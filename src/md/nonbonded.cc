#include "md/nonbonded.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "obs/profiler.h"

namespace anton::md {

namespace {

constexpr double kTwoOverSqrtPi = 1.1283791670955126;

// Atom count below which threading overhead beats the parallel win.
constexpr size_t kSerialThreshold = 2048;

// Accumulator policies for the pair kernels.  The kernels compute each
// per-pair contribution (pure function of positions and parameters, so
// identical regardless of which thread evaluates it) and hand it to the
// accumulator, which decides the summation arithmetic:
//
//   DoubleAcc — the default double-precision path, op-for-op identical to
//     the pre-refactor kernel (per-atom fi register, f[j] scatter), so it is
//     deterministic for a fixed thread count and matches serial to ~1e-10.
//
//   FixedAcc — the deterministic mode: every contribution is quantized to
//     32.32 fixed point at accumulation.  Fixed addition is exactly
//     associative and commutative, so the reduced result is bitwise
//     identical for ANY thread count and chunking (the property Anton's
//     hardware adders provide by construction).
struct DoubleAcc {
  std::span<Vec3> f;
  PairEnergyPartial e{};
  Vec3 fi{};

  void begin_atom(size_t) { fi = Vec3{}; }
  void end_atom(size_t i) { f[i] += fi; }
  void add_lj(double de) { e.lj += de; }
  void add_coul(double de) { e.coul += de; }
  void add_excl(double de) { e.excl += de; }
  // Half-list pair: i accumulates in the register, j scatters.
  void add_pair(size_t, size_t j, const Vec3& fv, double vir) {
    e.virial += vir;
    fi += fv;
    f[j] -= fv;
  }
  // Direct (exclusion-loop) pair: both sides scatter.
  void add_pair_direct(size_t i, size_t j, const Vec3& fv, double vir) {
    e.virial += vir;
    f[i] += fv;
    f[j] -= fv;
  }
};

struct FixedAcc {
  std::span<ForceFixed> f;
  PairEnergyPartialFixed e{};

  void begin_atom(size_t) {}
  void end_atom(size_t) {}
  void add_lj(double de) { e.lj += Fixed<32>::from_double(de); }
  void add_coul(double de) { e.coul += Fixed<32>::from_double(de); }
  void add_excl(double de) { e.excl += Fixed<32>::from_double(de); }
  void add_pair(size_t i, size_t j, const Vec3& fv, double vir) {
    e.virial += Fixed<32>::from_double(vir);
    f[i].accumulate(fv);
    f[j].accumulate(-fv);
  }
  void add_pair_direct(size_t i, size_t j, const Vec3& fv, double vir) {
    add_pair(i, j, fv, vir);
  }
};

// Inner kernel over the i-range [begin, end); contributions flow through the
// accumulator policy.  All per-pair parameters come from the workspace
// caches (premixed LJ table, prescaled charges), so the loop reads flat SoA
// arrays only.  With kTable the screened-Coulomb energy/force factors come
// from cubic-Hermite tables in r² (no sqrt, no erfc/exp on the hot path).
// ANTON_HOT_NOALLOC
template <bool kTable, class Acc>
void pair_kernel(const Box& box, const ForceWorkspace& ws,
                 const NeighborList& nlist, std::span<const Vec3> pos,
                 std::span<const int> types, std::span<const double> charges,
                 double alpha, double cutoff2, size_t begin, size_t end,
                 Acc& acc) {
  const auto q_scaled = ws.scaled_charges();
  const double coul_shift = ws.coul_shift();
  const int ntypes = ws.num_types();
  const LjMixed* lj_table = &ws.lj(0, 0);
  // Minimum-image applied inline with precomputed reciprocal box lengths:
  // nearbyint(d * 1/L) instead of nearbyint(d / L) removes three double
  // divisions per candidate pair, which -O2 cannot do on its own.
  const Vec3 box_l = box.lengths();
  const Vec3 inv_l{1.0 / box_l.x, 1.0 / box_l.y, 1.0 / box_l.z};
  [[maybe_unused]] const double table_r2_min =
      kTable ? ws.table_r2_min() : 0.0;
  [[maybe_unused]] const CoulTableView tab =
      kTable ? ws.coul_ef() : CoulTableView{};

  for (size_t i = begin; i < end; ++i) {
    const Vec3 pi = pos[i];
    const double qi = q_scaled[i];
    const LjMixed* lj_row = lj_table + types[i] * ntypes;
    acc.begin_atom(i);
    for (int j : nlist.neighbors_of(static_cast<int>(i))) {
      Vec3 d = pi - pos[static_cast<size_t>(j)];
      d.x -= box_l.x * std::nearbyint(d.x * inv_l.x);
      d.y -= box_l.y * std::nearbyint(d.y * inv_l.y);
      d.z -= box_l.z * std::nearbyint(d.z * inv_l.z);
      const double r2 = norm2(d);
      if (r2 >= cutoff2) continue;
      double f_pair = 0.0;

      // Lennard-Jones from the premixed type-pair table.
      const LjMixed& lj = lj_row[types[static_cast<size_t>(j)]];
      if (lj.eps > 0) {
        const double inv_r2 = 1.0 / r2;
        const double sr2 = lj.sigma2 * inv_r2;
        const double sr6 = sr2 * sr2 * sr2;
        f_pair += 24.0 * lj.eps * (2.0 * sr6 * sr6 - sr6) * inv_r2;
        acc.add_lj(4.0 * lj.eps * (sr6 * sr6 - sr6) - lj.e_shift);
      }

      // Coulomb (screened when alpha > 0).
      const double qq = qi * charges[static_cast<size_t>(j)];
      if (qq != 0.0) {
        double e_c, f_c;
        if constexpr (kTable) {
          if (r2 >= table_r2_min) {
            // Fused cubic-Hermite lookup: one index computation and one
            // basis evaluation feed both the energy and the force factor
            // (which already folds in the 1/r², so no division here).
            const double s = (r2 - tab.x0) * tab.inv_h;
            int k = static_cast<int>(s);
            if (k > tab.n - 2) k = tab.n - 2;
            const double t = s - k;
            const CoulNode& a = tab.nodes[k];
            const CoulNode& b = tab.nodes[k + 1];
            const double t2 = t * t;
            const double t3 = t2 * t;
            const double h00 = 2 * t3 - 3 * t2 + 1;
            const double h10 = (t3 - 2 * t2 + t) * tab.h;
            const double h01 = -2 * t3 + 3 * t2;
            const double h11 = (t3 - t2) * tab.h;
            e_c = qq * (h00 * a.ev + h10 * a.ed + h01 * b.ev + h11 * b.ed -
                        coul_shift);
            f_c = qq * (h00 * a.fv + h10 * a.fd + h01 * b.fv + h11 * b.fd);
          } else {
            const double inv_r2 = 1.0 / r2;
            const double r = std::sqrt(r2);
            const double ar = alpha * r;
            const double erfc_ar = std::erfc(ar);
            e_c = qq * (erfc_ar / r - coul_shift);
            f_c = qq *
                  (erfc_ar / r +
                   kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) *
                  inv_r2;
          }
        } else {
          const double inv_r2 = 1.0 / r2;
          const double r = std::sqrt(r2);
          if (alpha > 0) {
            const double ar = alpha * r;
            const double erfc_ar = std::erfc(ar);
            e_c = qq * (erfc_ar / r - coul_shift);
            f_c = qq *
                  (erfc_ar / r +
                   kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) *
                  inv_r2;
          } else {
            e_c = qq * (1.0 / r - coul_shift);
            f_c = qq / r * inv_r2;
          }
        }
        acc.add_coul(e_c);
        f_pair += f_c;
      }

      const Vec3 fv = f_pair * d;
      acc.add_pair(i, static_cast<size_t>(j), fv, dot(d, fv));
    }
    acc.end_atom(i);
  }
}

// Excluded-pair correction kernel over the i-range [begin, end).
// ANTON_HOT_NOALLOC
template <class Acc>
void excluded_kernel(const Box& box, const Topology& top,
                     std::span<const Vec3> pos, double alpha, size_t begin,
                     size_t end, Acc& acc) {
  const Vec3 box_l = box.lengths();
  const Vec3 inv_l{1.0 / box_l.x, 1.0 / box_l.y, 1.0 / box_l.z};
  for (size_t i = begin; i < end; ++i) {
    const double qi = units::kCoulomb * top.charge(static_cast<int>(i));
    if (qi == 0.0) continue;
    for (int j : top.exclusions_of(static_cast<int>(i))) {
      const double qq = qi * top.charge(j);
      if (qq == 0.0) continue;
      Vec3 d = pos[i] - pos[static_cast<size_t>(j)];
      d.x -= box_l.x * std::nearbyint(d.x * inv_l.x);
      d.y -= box_l.y * std::nearbyint(d.y * inv_l.y);
      d.z -= box_l.z * std::nearbyint(d.z * inv_l.z);
      const double r2 = norm2(d);
      const double r = std::sqrt(r2);
      const double ar = alpha * r;
      const double erf_ar = std::erf(ar);
      // Subtract E = qq erf(ar)/r.
      acc.add_excl(-qq * erf_ar / r);
      // F_i for energy -qq erf(ar)/r: gradient of erf/r is
      // (2a/sqrt(pi) exp(-a²r²) r - erf(ar)) / r²  along r̂.
      const double f_mag =
          -qq *
          (erf_ar / r - kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) / r2;
      const Vec3 fv = f_mag * d;
      acc.add_pair_direct(i, static_cast<size_t>(j), fv, dot(d, fv));
    }
  }
}

// Zero-restoring reduction: folds every per-thread buffer into `forces` and
// leaves the buffers zeroed for the next evaluation.  Summation order over t
// is fixed, so results are deterministic for a fixed thread count.
// ANTON_HOT_NOALLOC
void reduce_thread_forces(ThreadPool* pool, ForceWorkspace* ws, unsigned T,
                          std::span<Vec3> forces) {
  pool->parallel_for(forces.size(), [&](size_t b, size_t e) {
    for (unsigned t = 0; t < T; ++t) {
      auto buf = ws->thread_force(t);
      for (size_t i = b; i < e; ++i) {
        forces[i] += buf[i];
        buf[i] = Vec3{};
      }
    }
  });
}

// Fixed-point twin: sums the per-thread fixed accumulators exactly (order
// cannot matter), converts once to double, and zero-restores the buffers.
// ANTON_HOT_NOALLOC
void reduce_thread_forces_fixed(ThreadPool* pool, ForceWorkspace* ws,
                                unsigned T, std::span<Vec3> forces) {
  auto fold = [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      ForceFixed sum{};
      for (unsigned t = 0; t < T; ++t) {
        auto buf = ws->thread_force_fixed(t);
        sum += buf[i];
        buf[i] = ForceFixed{};
      }
      forces[i] += sum.to_vec3();
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(forces.size(), fold);
  } else {
    fold(0, forces.size());
  }
}

}  // namespace

void compute_nonbonded(const Box& box, const Topology& top,
                       const NeighborList& nlist, std::span<const Vec3> pos,
                       double alpha, std::span<Vec3> forces,
                       EnergyReport& energy, ThreadPool* pool,
                       bool shift_at_cutoff, ForceWorkspace* ws,
                       bool tabulate_erfc, bool deterministic,
                       obs::Stat* thread_stat) {
  ANTON_CHECK(nlist.built());
  ANTON_CHECK(nlist.num_atoms() == top.num_atoms());
  const double cutoff = nlist.cutoff();
  const double cutoff2 = cutoff * cutoff;
  const size_t n = pos.size();

  ForceWorkspace local;
  if (ws == nullptr) ws = &local;
  ws->build_cache(top, alpha, cutoff, shift_at_cutoff, tabulate_erfc);
  const bool use_table = tabulate_erfc && alpha > 0 && ws->tables_ready();

  const auto types = top.types();
  const auto charges = top.charges();

  if (deterministic) {
    // Fixed-point accumulation: any chunking gives the same bits, so serial
    // and threaded paths share one code path over the per-thread buffers.
    const unsigned T =
        (pool == nullptr || n < kSerialThreshold) ? 1 : pool->size();
    ws->ensure_fixed_threads(T, n);
    auto run_fixed = [&](size_t begin, size_t end, unsigned t) {
      FixedAcc acc{ws->thread_force_fixed(t)};
      if (use_table) {
        pair_kernel<true>(box, *ws, nlist, pos, types, charges, alpha,
                          cutoff2, begin, end, acc);
      } else {
        pair_kernel<false>(box, *ws, nlist, pos, types, charges, alpha,
                           cutoff2, begin, end, acc);
      }
      ws->partial_fixed(t) = acc.e;
    };
    if (T <= 1) {
      const double w0 = thread_stat != nullptr ? obs::wall_seconds() : 0.0;
      run_fixed(0, n, 0);
      if (thread_stat != nullptr) thread_stat->add(obs::wall_seconds() - w0);
    } else {
      // Pair-balanced chunking (see the double path below for rationale).
      auto& bounds = ws->chunk_bounds();
      const auto starts = nlist.starts();
      const int64_t total = nlist.num_pairs();
      bounds[0] = 0;
      for (unsigned t = 1; t < T; ++t) {
        const int64_t target = total * static_cast<int64_t>(t) / T;
        const size_t b = static_cast<size_t>(
            std::lower_bound(starts.begin(), starts.end(), target) -
            starts.begin());
        bounds[t] = std::clamp(b, bounds[t - 1], n);
      }
      bounds[T] = n;
      pool->for_each_thread([&](unsigned t) {
        const double w0 =
            thread_stat != nullptr ? obs::wall_seconds() : 0.0;
        if (bounds[t] < bounds[t + 1]) {
          run_fixed(bounds[t], bounds[t + 1], t);
        } else {
          ws->partial_fixed(t) = PairEnergyPartialFixed{};
        }
        if (thread_stat != nullptr)
          thread_stat->add(obs::wall_seconds() - w0);
      });
    }
    reduce_thread_forces_fixed(T > 1 ? pool : nullptr, ws, T, forces);
    PairEnergyPartialFixed e{};
    for (unsigned t = 0; t < T; ++t) e += ws->partial_fixed(t);
    energy.lj += e.lj.to_double();
    energy.coulomb_real += e.coul.to_double();
    energy.virial += e.virial.to_double();
    return;
  }

  auto run = [&](size_t begin, size_t end,
                 std::span<Vec3> f) -> PairEnergyPartial {
    DoubleAcc acc{f};
    if (use_table) {
      pair_kernel<true>(box, *ws, nlist, pos, types, charges, alpha, cutoff2,
                        begin, end, acc);
    } else {
      pair_kernel<false>(box, *ws, nlist, pos, types, charges, alpha, cutoff2,
                         begin, end, acc);
    }
    return acc.e;
  };

  if (pool == nullptr || pool->size() <= 1 || n < kSerialThreshold) {
    const double w0 = thread_stat != nullptr ? obs::wall_seconds() : 0.0;
    const PairEnergyPartial e = run(0, n, forces);
    if (thread_stat != nullptr) thread_stat->add(obs::wall_seconds() - w0);
    energy.lj += e.lj;
    energy.coulomb_real += e.coul;
    energy.virial += e.virial;
    return;
  }

  const unsigned T = pool->size();
  ws->ensure_threads(T, n);

  // Pair-balanced chunking: the half-list CSR front-loads neighbours onto
  // low atom indices, so equal atom ranges starve the high threads.  Split
  // atoms at equal cumulative-pair quantiles of starts_ instead.
  auto& bounds = ws->chunk_bounds();
  const auto starts = nlist.starts();
  const int64_t total = nlist.num_pairs();
  bounds[0] = 0;
  for (unsigned t = 1; t < T; ++t) {
    const int64_t target = total * static_cast<int64_t>(t) / T;
    const size_t b = static_cast<size_t>(
        std::lower_bound(starts.begin(), starts.end(), target) -
        starts.begin());
    bounds[t] = std::clamp(b, bounds[t - 1], n);
  }
  bounds[T] = n;

  pool->for_each_thread([&](unsigned t) {
    const double w0 = thread_stat != nullptr ? obs::wall_seconds() : 0.0;
    ws->partial(t) = bounds[t] < bounds[t + 1]
                         ? run(bounds[t], bounds[t + 1], ws->thread_force(t))
                         : PairEnergyPartial{};
    if (thread_stat != nullptr) thread_stat->add(obs::wall_seconds() - w0);
  });

  reduce_thread_forces(pool, ws, T, forces);

  for (unsigned t = 0; t < T; ++t) {
    energy.lj += ws->partial(t).lj;
    energy.coulomb_real += ws->partial(t).coul;
    energy.virial += ws->partial(t).virial;
  }
}

double ewald_self_energy(const Topology& top, double alpha) {
  double q2 = 0;
  for (double q : top.charges()) q2 += q * q;
  return -units::kCoulomb * alpha / std::sqrt(M_PI) * q2;
}

void compute_excluded_correction(const Box& box, const Topology& top,
                                 std::span<const Vec3> pos, double alpha,
                                 std::span<Vec3> forces, EnergyReport& energy,
                                 ThreadPool* pool, ForceWorkspace* ws,
                                 bool deterministic) {
  const size_t n = pos.size();

  if (deterministic) {
    ForceWorkspace local;
    if (ws == nullptr) ws = &local;
    const unsigned T =
        (pool == nullptr || n < kSerialThreshold) ? 1 : pool->size();
    ws->ensure_fixed_threads(T, n);
    auto run_fixed = [&](size_t begin, size_t end, unsigned t) {
      FixedAcc acc{ws->thread_force_fixed(t)};
      excluded_kernel(box, top, pos, alpha, begin, end, acc);
      ws->partial_fixed(t) = acc.e;
    };
    if (T <= 1) {
      run_fixed(0, n, 0);
    } else {
      const size_t chunk = (n + T - 1) / T;
      pool->for_each_thread([&](unsigned t) {
        const size_t begin = std::min(n, static_cast<size_t>(t) * chunk);
        const size_t end = std::min(n, begin + chunk);
        if (begin < end) {
          run_fixed(begin, end, t);
        } else {
          ws->partial_fixed(t) = PairEnergyPartialFixed{};
        }
      });
    }
    reduce_thread_forces_fixed(T > 1 ? pool : nullptr, ws, T, forces);
    PairEnergyPartialFixed e{};
    for (unsigned t = 0; t < T; ++t) e += ws->partial_fixed(t);
    energy.coulomb_excl += e.excl.to_double();
    energy.virial += e.virial.to_double();
    return;
  }

  if (pool == nullptr || pool->size() <= 1 || ws == nullptr ||
      n < kSerialThreshold) {
    DoubleAcc acc{forces};
    excluded_kernel(box, top, pos, alpha, 0, n, acc);
    energy.coulomb_excl += acc.e.excl;
    energy.virial += acc.e.virial;
    return;
  }

  const unsigned T = pool->size();
  ws->ensure_threads(T, n);
  // Exclusions are uniform across atoms (dominated by water), so static atom
  // chunks balance fine here.
  const size_t chunk = (n + T - 1) / T;
  pool->for_each_thread([&](unsigned t) {
    const size_t begin = std::min(n, static_cast<size_t>(t) * chunk);
    const size_t end = std::min(n, begin + chunk);
    if (begin < end) {
      DoubleAcc acc{ws->thread_force(t)};
      excluded_kernel(box, top, pos, alpha, begin, end, acc);
      ws->partial(t) = acc.e;
    } else {
      ws->partial(t) = PairEnergyPartial{};
    }
  });

  reduce_thread_forces(pool, ws, T, forces);

  for (unsigned t = 0; t < T; ++t) {
    energy.coulomb_excl += ws->partial(t).excl;
    energy.virial += ws->partial(t).virial;
  }
}

}  // namespace anton::md
