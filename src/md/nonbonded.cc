#include "md/nonbonded.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/simd.h"
#include "common/units.h"
#include "obs/profiler.h"

namespace anton::md {

namespace {

constexpr double kTwoOverSqrtPi = 1.1283791670955126;

// Atom count below which threading overhead beats the parallel win.
constexpr size_t kSerialThreshold = 2048;

// Accumulator policies for the pair kernels.  The kernels compute each
// per-pair contribution (pure function of positions and parameters, so
// identical regardless of which thread evaluates it) and hand it to the
// accumulator, which decides the summation arithmetic:
//
//   DoubleAcc — the default double-precision path, op-for-op identical to
//     the pre-refactor kernel (per-atom fi register, f[j] scatter), so it is
//     deterministic for a fixed thread count and matches serial to ~1e-10.
//
//   FixedAcc — the deterministic mode: every contribution is quantized to
//     32.32 fixed point at accumulation.  Fixed addition is exactly
//     associative and commutative, so the reduced result is bitwise
//     identical for ANY thread count and chunking (the property Anton's
//     hardware adders provide by construction).
struct DoubleAcc {
  std::span<Vec3> f;
  PairEnergyPartial e{};
  Vec3 fi{};

  void begin_atom(size_t) { fi = Vec3{}; }
  void end_atom(size_t i) { f[i] += fi; }
  void add_lj(double de) { e.lj += de; }
  void add_coul(double de) { e.coul += de; }
  void add_excl(double de) { e.excl += de; }
  // Half-list pair: i accumulates in the register, j scatters.
  void add_pair(size_t, size_t j, const Vec3& fv, double vir) {
    e.virial += vir;
    fi += fv;
    f[j] -= fv;
  }
  // Direct (exclusion-loop) pair: both sides scatter.
  void add_pair_direct(size_t i, size_t j, const Vec3& fv, double vir) {
    e.virial += vir;
    f[i] += fv;
    f[j] -= fv;
  }
};

struct FixedAcc {
  std::span<ForceFixed> f;
  PairEnergyPartialFixed e{};

  void begin_atom(size_t) {}
  void end_atom(size_t) {}
  void add_lj(double de) { e.lj += Fixed<32>::from_double(de); }
  void add_coul(double de) { e.coul += Fixed<32>::from_double(de); }
  void add_excl(double de) { e.excl += Fixed<32>::from_double(de); }
  void add_pair(size_t i, size_t j, const Vec3& fv, double vir) {
    e.virial += Fixed<32>::from_double(vir);
    f[i].accumulate(fv);
    f[j].accumulate(-fv);
  }
  void add_pair_direct(size_t i, size_t j, const Vec3& fv, double vir) {
    add_pair(i, j, fv, vir);
  }
};

// Batch accumulator policies for the vectorized pair kernel.  The kernel
// hands over one W-lane chunk of per-pair contributions at a time (lanes
// beyond the neighbor-row tail, and lanes outside the cutoff, carry exact
// 0.0 in every component, so accumulating them is a bitwise no-op):
//
//   DoubleBatchAcc — vector partial accumulators for the i-row force and the
//     range energies, folded lane-by-lane in the fixed order
//     ((l0+l1)+l2)+l3 at row/range end.  Both SIMD backends run this same
//     lane structure, so the double path is ALSO bitwise identical across
//     ANTON_SIMD=avx2 and scalar (and deterministic for a fixed thread
//     count, as before).
//
//   FixedBatchAcc — the deterministic mode: each lane's contribution is
//     extracted and quantized to 32.32 fixed point individually, in lane
//     order, exactly as the scalar kernel quantizes per pair.  Fixed
//     addition is exactly associative, so the result is bitwise identical
//     for any thread count AND any backend.
struct DoubleBatchAcc {
  std::span<Vec3> f;
  PairEnergyPartial e{};
  simd::VecD e_lj_v = simd::VecD::zero();
  simd::VecD e_c_v = simd::VecD::zero();
  simd::VecD vir_v = simd::VecD::zero();
  simd::VecD fi_x = simd::VecD::zero();
  simd::VecD fi_y = simd::VecD::zero();
  simd::VecD fi_z = simd::VecD::zero();
  Vec3 fi_tail{};  // scalar-fallback contributions to the i register

  void begin_atom(size_t) {
    fi_x = simd::VecD::zero();
    fi_y = simd::VecD::zero();
    fi_z = simd::VecD::zero();
    fi_tail = Vec3{};
  }
  void end_atom(size_t i) {
    f[i] += Vec3{fi_x.reduce_ordered(), fi_y.reduce_ordered(),
                 fi_z.reduce_ordered()} +
            fi_tail;
  }
  void add_chunk(size_t, const int* j, int cnt, simd::VecD fx, simd::VecD fy,
                 simd::VecD fz, simd::VecD e_lj, simd::VecD e_c,
                 simd::VecD vir) {
    e_lj_v = e_lj_v + e_lj;
    e_c_v = e_c_v + e_c;
    vir_v = vir_v + vir;
    fi_x = fi_x + fx;
    fi_y = fi_y + fy;
    fi_z = fi_z + fz;
    // Aligned spill buffers: the per-lane reads below are then fully
    // store-forwardable from the vector stores.
    alignas(32) double bx[simd::kLanesD];
    alignas(32) double by[simd::kLanesD];
    alignas(32) double bz[simd::kLanesD];
    fx.storeu(bx);
    fy.storeu(by);
    fz.storeu(bz);
    for (int l = 0; l < cnt; ++l) {
      f[static_cast<size_t>(j[l])] -= Vec3{bx[l], by[l], bz[l]};
    }
  }
  // Sub-table-floor lanes, evaluated analytically one at a time.
  void add_scalar(size_t, size_t j, const Vec3& fv, double e_c, double vir) {
    e.coul += e_c;
    e.virial += vir;
    fi_tail += fv;
    f[j] -= fv;
  }
  // Folds the vector partials into the scalar energy report (lane order).
  void finish() {
    e.lj += e_lj_v.reduce_ordered();
    e.coul += e_c_v.reduce_ordered();
    e.virial += vir_v.reduce_ordered();
  }
};

struct FixedBatchAcc {
  std::span<ForceFixed> f;
  PairEnergyPartialFixed e{};

  void begin_atom(size_t) {}
  void end_atom(size_t) {}
  void add_chunk(size_t i, const int* j, int cnt, simd::VecD fx, simd::VecD fy,
                 simd::VecD fz, simd::VecD e_lj, simd::VecD e_c,
                 simd::VecD vir) {
    alignas(32) double bx[simd::kLanesD];
    alignas(32) double by[simd::kLanesD];
    alignas(32) double bz[simd::kLanesD];
    alignas(32) double blj[simd::kLanesD];
    alignas(32) double bec[simd::kLanesD];
    alignas(32) double bvir[simd::kLanesD];
    fx.storeu(bx);
    fy.storeu(by);
    fz.storeu(bz);
    e_lj.storeu(blj);
    e_c.storeu(bec);
    vir.storeu(bvir);
    // Per-lane quantization in lane order: bitwise identical to the scalar
    // kernel's per-pair quantization (and exactly associative thereafter).
    for (int l = 0; l < cnt; ++l) {
      e.lj += Fixed<32>::from_double(blj[l]);
      e.coul += Fixed<32>::from_double(bec[l]);
      e.virial += Fixed<32>::from_double(bvir[l]);
      const Vec3 fv{bx[l], by[l], bz[l]};
      f[i].accumulate(fv);
      f[static_cast<size_t>(j[l])].accumulate(-fv);
    }
  }
  void add_scalar(size_t i, size_t j, const Vec3& fv, double e_c,
                  double vir) {
    e.coul += Fixed<32>::from_double(e_c);
    e.virial += Fixed<32>::from_double(vir);
    f[i].accumulate(fv);
    f[j].accumulate(-fv);
  }
  void finish() {}
};

// Vectorized tabulated pair kernel over the i-range [begin, end): each
// i-row's neighbors are processed in W-lane SoA chunks (dx/dy/dz/q/type
// gathered by index from the workspace's staged position lanes), with the
// division-free minimum image, the premixed-LJ evaluation and the fused
// cubic-Hermite erfc lookup all running per lane through the simd wrapper.
// Ragged row tails are masked: inactive lanes duplicate a valid neighbor
// index (so gathers stay in-range) and have every contribution blended to
// exact 0.0.  Lanes under the table floor (r² < table_r2_min) are rare bad
// geometry; they are zeroed in the vector pass and re-evaluated analytically
// per lane, with the identical scalar expressions both backends compile.
template <class Acc>
void pair_kernel_simd(const Box& box, const ForceWorkspace& ws,
                      const NeighborList& nlist,
                      std::span<const int> types,
                      std::span<const double> charges, double alpha,
                      double cutoff2, size_t begin, size_t end, Acc& acc) {
  ANTON_HOT_NOALLOC();
  using simd::MaskD;
  using simd::VecD;
  using simd::VecI;
  constexpr int W = simd::kLanesD;

  const auto q_scaled = ws.scaled_charges();
  const int ntypes = ws.num_types();
  // LjMixed and CoulNode are 4-double records; all per-neighbor parameters
  // come in through simd::load_fields4 record loads (contiguous loads + an
  // in-register transpose), which on AVX2 are several times faster than the
  // equivalent hardware gathers and bitwise identical to them.
  const double* lj_base = reinterpret_cast<const double*>(&ws.lj(0, 0));
  const CoulTableView tab = ws.coul_ef();
  const double* tab_base = reinterpret_cast<const double*>(tab.nodes);
  const double* pxyzq = ws.soa_xyzq();
  const double* qp = charges.data();

  const Vec3 box_l = box.lengths();
  const VecD v_nlx = VecD::broadcast(-box_l.x);
  const VecD v_nly = VecD::broadcast(-box_l.y);
  const VecD v_nlz = VecD::broadcast(-box_l.z);
  const VecD v_inv_lx = VecD::broadcast(1.0 / box_l.x);
  const VecD v_inv_ly = VecD::broadcast(1.0 / box_l.y);
  const VecD v_inv_lz = VecD::broadcast(1.0 / box_l.z);
  const VecD v_cutoff2 = VecD::broadcast(cutoff2);
  const VecD v_r2min = VecD::broadcast(ws.table_r2_min());
  const VecD v_x0 = VecD::broadcast(tab.x0);
  const VecD v_inv_h = VecD::broadcast(tab.inv_h);
  const VecD v_h = VecD::broadcast(tab.h);
  const VecD v_nshift = VecD::broadcast(-ws.coul_shift());
  const VecD v_one = VecD::broadcast(1.0);
  const VecD v_two = VecD::broadcast(2.0);
  const VecD v_ntwo = VecD::broadcast(-2.0);
  const VecD v_three = VecD::broadcast(3.0);
  const VecD v_nthree = VecD::broadcast(-3.0);
  const VecD v_four = VecD::broadcast(4.0);
  const VecD v_24 = VecD::broadcast(24.0);
  const VecD v_zero = VecD::zero();
  const VecI vi_zero = VecI::broadcast(0);
  const VecI vi_four = VecI::broadcast(4);
  const VecI vi_nmax = VecI::broadcast(tab.n - 2);
  const MaskD m_full = MaskD::first_n(W);
  const double coul_shift = ws.coul_shift();
  const double table_r2_min = ws.table_r2_min();

  // Neighbors are processed in staged segments of kSeg: a first pass over
  // the segment computes min-image displacements, r² and the clamped table
  // record offsets, and issues prefetches for the Hermite records; the
  // second pass consumes the staged values and finds the records in cache.
  // The fused table (MBs at the default accuracy bound) misses L2 on nearly
  // every lookup, so without the distance-kSeg prefetch the kernel is
  // latency-bound on those misses.  Staging changes no arithmetic and no
  // accumulation order: every value is stored and reloaded bit-exactly.
  constexpr int kSeg = 64;
  alignas(32) double sdx[kSeg], sdy[kSeg], sdz[kSeg], sr2[kSeg], sqj[kSeg];
  alignas(16) int sj[kSeg];    // padded neighbor indices
  alignas(16) int snode[kSeg];  // clamped table record offsets

  for (size_t i = begin; i < end; ++i) {
    const double* irec = pxyzq + 4 * i;
    const VecD pix = VecD::broadcast(irec[0]);
    const VecD piy = VecD::broadcast(irec[1]);
    const VecD piz = VecD::broadcast(irec[2]);
    const VecD qi = VecD::broadcast(q_scaled[i]);
    const VecI row_off = VecI::broadcast(types[i] * ntypes);
    // Whole-row LJ skip (e.g. water hydrogens): every lane of such a row
    // contributes exact +0.0 through the blends, so bypassing the division,
    // the type gather and the sr6 chain changes no bits.
    const bool lj_row_zero = ws.lj_row_zero(types[i]);
    acc.begin_atom(i);
    const auto nb = nlist.neighbors_of(static_cast<int>(i));
    const int* jp = nb.data();
    const size_t nn = nb.size();
    for (size_t seg = 0; seg < nn; seg += static_cast<size_t>(kSeg)) {
      const int seg_n = static_cast<int>(
          std::min(nn - seg, static_cast<size_t>(kSeg)));
      const int* jseg = jp + seg;

      // Pass 1: distances and table offsets, with table prefetch.
      for (int c = 0; c < seg_n; c += W) {
        const int cnt = seg_n - c < W ? seg_n - c : W;
        // Pad the tail with a valid index so record loads stay in-range;
        // the padded lanes are masked out of every contribution in pass 2.
        if (cnt < W) {
          for (int l = 0; l < W; ++l) sj[c + l] = jseg[c + (l < cnt ? l : 0)];
        } else {
          VecI::loadu(jseg + c).storeu(sj + c);
        }
        const VecI j = VecI::loadu(sj + c);

        // One record load per neighbor chunk: x/y/z/charge transposed into
        // field vectors.
        VecD jx, jy, jz, jq;
        simd::load_fields4(pxyzq, j * vi_four, jx, jy, jz, jq);
        VecD dx = pix - jx;
        VecD dy = piy - jy;
        VecD dz = piz - jz;
        // Min-image as one fma per axis.  The explicit fma (single
        // rounding) is not bitwise the old mul-then-sub, but both backends
        // compute the identical fused expression, so cross-backend parity
        // holds.
        dx = fma(v_nlx, round_nearest(dx * v_inv_lx), dx);
        dy = fma(v_nly, round_nearest(dy * v_inv_ly), dy);
        dz = fma(v_nlz, round_nearest(dz * v_inv_lz), dz);
        const VecD r2 = fma(dx, dx, fma(dy, dy, dz * dz));
        dx.storeu(sdx + c);
        dy.storeu(sdy + c);
        dz.storeu(sdz + c);
        r2.storeu(sr2 + c);
        jq.storeu(sqj + c);
        const VecD s = (r2 - v_x0) * v_inv_h;
        const VecI k = min(max(truncate(s), vi_zero), vi_nmax);
        const VecI node = k * vi_four;
        node.storeu(snode + c);
        for (int l = 0; l < W; ++l) {
          // Both Hermite records (node and node+4, 64 bytes) for this lane.
          simd::prefetch(tab_base + snode[c + l]);
          simd::prefetch(tab_base + snode[c + l] + 7);
        }
      }

      // Pass 2: LJ + tabulated Coulomb on the staged chunks.
      for (int c = 0; c < seg_n; c += W) {
        const int cnt = seg_n - c < W ? seg_n - c : W;
        const int* jchunk = sj + c;
        const MaskD active = cnt < W ? MaskD::first_n(cnt) : m_full;
        const VecI j = VecI::loadu(jchunk);
        const VecD dx = VecD::loadu(sdx + c);
        const VecD dy = VecD::loadu(sdy + c);
        const VecD dz = VecD::loadu(sdz + c);
        const VecD r2 = VecD::loadu(sr2 + c);
        const MaskD in_range = active & cmp_lt(r2, v_cutoff2);
        if (!in_range.any()) continue;

        // Lennard-Jones from the premixed type-pair table.  eps == 0 rows
        // yield exact zeros, so no separate eps mask is needed;
        // out-of-range lanes are blended off (their inv_r2 may be inf).
        VecD f_lj = v_zero;
        VecD e_lj = v_zero;
        if (!lj_row_zero) {
          const VecD inv_r2 = v_one / r2;
          const VecI tj = VecI::gather(types.data(), j);
          VecD eps, sigma2, e_shift, lj_pad;
          simd::load_fields4(lj_base, (row_off + tj) * vi_four, eps, sigma2,
                             e_shift, lj_pad);
          const VecD sr2v = sigma2 * inv_r2;
          const VecD sr6 = sr2v * sr2v * sr2v;
          const VecD sr12 = sr6 * sr6;
          f_lj = blend(in_range, v_24 * eps * (v_two * sr12 - sr6) * inv_r2,
                       v_zero);
          e_lj = blend(in_range, v_four * eps * (sr12 - sr6) - e_shift,
                       v_zero);
        }

        // Screened Coulomb via the fused cubic-Hermite table: one staged
        // record offset, two record loads (prefetched in pass 1), one
        // shared basis.  qq == 0 lanes produce exact zeros through the
        // final multiply.
        const VecD qq = qi * VecD::loadu(sqj + c);
        const VecD s = (r2 - v_x0) * v_inv_h;
        const VecI k = min(max(truncate(s), vi_zero), vi_nmax);
        const VecD t = s - VecD::from_int(k);
        const VecI node = VecI::loadu(snode + c);
        VecD a_ev, a_ed, a_fv, a_fd;
        VecD b_ev, b_ed, b_fv, b_fd;
        simd::load_fields4(tab_base, node, a_ev, a_ed, a_fv, a_fd);
        simd::load_fields4(tab_base, node + vi_four, b_ev, b_ed, b_fv, b_fd);
        // Hermite basis and both interpolants as fma chains: fewer uops
        // and shorter latency chains than the mul/add forms, and fused
        // identically by both backends.
        const VecD t2 = t * t;
        const VecD t3 = t2 * t;
        const VecD h00 = fma(v_two, t3, fma(v_nthree, t2, v_one));
        const VecD h10 = fma(v_ntwo, t2, t3 + t) * v_h;
        const VecD h01 = fma(v_ntwo, t3, v_three * t2);
        const VecD h11 = (t3 - t2) * v_h;
        const MaskD tab_m = in_range & cmp_ge(r2, v_r2min);
        const VecD e_c = blend(
            tab_m,
            qq * fma(h00, a_ev,
                     fma(h10, a_ed,
                         fma(h01, b_ev, fma(h11, b_ed, v_nshift)))),
            v_zero);
        const VecD f_c = blend(
            tab_m,
            qq * fma(h00, a_fv, fma(h10, a_fd, fma(h01, b_fv, h11 * b_fd))),
            v_zero);

        const VecD f_pair = f_lj + f_c;
        const VecD fx = f_pair * dx;
        const VecD fy = f_pair * dy;
        const VecD fz = f_pair * dz;
        const VecD vir = fma(dx, fx, fma(dy, fy, dz * fz));
        acc.add_chunk(i, jchunk, cnt, fx, fy, fz, e_lj, e_c, vir);

        // Analytic fallback for lanes that approached closer than the
        // table floor (bad initial geometry): identical scalar expressions
        // in both backends, so cross-backend parity is preserved.
        const MaskD fb = andnot(in_range, cmp_ge(r2, v_r2min));
        if (fb.any()) {
          for (int l = 0; l < cnt; ++l) {
            if (!fb.lane(l)) continue;
            const double r2l = r2.lane(l);
            if (!(r2l < table_r2_min)) continue;
            const double qql = q_scaled[i] * qp[jchunk[l]];
            if (qql == 0.0) continue;
            const double inv_r2l = 1.0 / r2l;
            const double r = std::sqrt(r2l);
            const double ar = alpha * r;
            const double erfc_ar = std::erfc(ar);
            const double e_cs = qql * (erfc_ar / r - coul_shift);
            const double f_cs =
                qql *
                (erfc_ar / r + kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) *
                inv_r2l;
            const Vec3 d{dx.lane(l), dy.lane(l), dz.lane(l)};
            const Vec3 fv = f_cs * d;
            acc.add_scalar(i, static_cast<size_t>(jchunk[l]), fv, e_cs,
                           dot(d, fv));
          }
        }
      }
    }
    acc.end_atom(i);
  }
  acc.finish();
}

// Inner kernel over the i-range [begin, end); contributions flow through the
// accumulator policy.  All per-pair parameters come from the workspace
// caches (premixed LJ table, prescaled charges), so the loop reads flat SoA
// arrays only.  With kTable the screened-Coulomb energy/force factors come
// from cubic-Hermite tables in r² (no sqrt, no erfc/exp on the hot path).
template <bool kTable, class Acc>
void pair_kernel(const Box& box, const ForceWorkspace& ws,
                 const NeighborList& nlist, std::span<const Vec3> pos,
                 std::span<const int> types, std::span<const double> charges,
                 double alpha, double cutoff2, size_t begin, size_t end,
                 Acc& acc) {
  ANTON_HOT_NOALLOC();
  const auto q_scaled = ws.scaled_charges();
  const double coul_shift = ws.coul_shift();
  const int ntypes = ws.num_types();
  const LjMixed* lj_table = &ws.lj(0, 0);
  // Minimum-image applied inline with precomputed reciprocal box lengths:
  // nearbyint(d * 1/L) instead of nearbyint(d / L) removes three double
  // divisions per candidate pair, which -O2 cannot do on its own.
  const Vec3 box_l = box.lengths();
  const Vec3 inv_l{1.0 / box_l.x, 1.0 / box_l.y, 1.0 / box_l.z};
  [[maybe_unused]] const double table_r2_min =
      kTable ? ws.table_r2_min() : 0.0;
  [[maybe_unused]] const CoulTableView tab =
      kTable ? ws.coul_ef() : CoulTableView{};

  for (size_t i = begin; i < end; ++i) {
    const Vec3 pi = pos[i];
    const double qi = q_scaled[i];
    const LjMixed* lj_row = lj_table + types[i] * ntypes;
    acc.begin_atom(i);
    for (int j : nlist.neighbors_of(static_cast<int>(i))) {
      Vec3 d = pi - pos[static_cast<size_t>(j)];
      d.x -= box_l.x * std::nearbyint(d.x * inv_l.x);
      d.y -= box_l.y * std::nearbyint(d.y * inv_l.y);
      d.z -= box_l.z * std::nearbyint(d.z * inv_l.z);
      const double r2 = norm2(d);
      if (r2 >= cutoff2) continue;
      double f_pair = 0.0;

      // Lennard-Jones from the premixed type-pair table.
      const LjMixed& lj = lj_row[types[static_cast<size_t>(j)]];
      if (lj.eps > 0) {
        const double inv_r2 = 1.0 / r2;
        const double sr2 = lj.sigma2 * inv_r2;
        const double sr6 = sr2 * sr2 * sr2;
        f_pair += 24.0 * lj.eps * (2.0 * sr6 * sr6 - sr6) * inv_r2;
        acc.add_lj(4.0 * lj.eps * (sr6 * sr6 - sr6) - lj.e_shift);
      }

      // Coulomb (screened when alpha > 0).
      const double qq = qi * charges[static_cast<size_t>(j)];
      if (qq != 0.0) {
        double e_c, f_c;
        if constexpr (kTable) {
          if (r2 >= table_r2_min) {
            // Fused cubic-Hermite lookup: one index computation and one
            // basis evaluation feed both the energy and the force factor
            // (which already folds in the 1/r², so no division here).
            const double s = (r2 - tab.x0) * tab.inv_h;
            int k = static_cast<int>(s);
            if (k > tab.n - 2) k = tab.n - 2;
            const double t = s - k;
            const CoulNode& a = tab.nodes[k];
            const CoulNode& b = tab.nodes[k + 1];
            const double t2 = t * t;
            const double t3 = t2 * t;
            const double h00 = 2 * t3 - 3 * t2 + 1;
            const double h10 = (t3 - 2 * t2 + t) * tab.h;
            const double h01 = -2 * t3 + 3 * t2;
            const double h11 = (t3 - t2) * tab.h;
            e_c = qq * (h00 * a.ev + h10 * a.ed + h01 * b.ev + h11 * b.ed -
                        coul_shift);
            f_c = qq * (h00 * a.fv + h10 * a.fd + h01 * b.fv + h11 * b.fd);
          } else {
            const double inv_r2 = 1.0 / r2;
            const double r = std::sqrt(r2);
            const double ar = alpha * r;
            const double erfc_ar = std::erfc(ar);
            e_c = qq * (erfc_ar / r - coul_shift);
            f_c = qq *
                  (erfc_ar / r +
                   kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) *
                  inv_r2;
          }
        } else {
          const double inv_r2 = 1.0 / r2;
          const double r = std::sqrt(r2);
          if (alpha > 0) {
            const double ar = alpha * r;
            const double erfc_ar = std::erfc(ar);
            e_c = qq * (erfc_ar / r - coul_shift);
            f_c = qq *
                  (erfc_ar / r +
                   kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) *
                  inv_r2;
          } else {
            e_c = qq * (1.0 / r - coul_shift);
            f_c = qq / r * inv_r2;
          }
        }
        acc.add_coul(e_c);
        f_pair += f_c;
      }

      const Vec3 fv = f_pair * d;
      acc.add_pair(i, static_cast<size_t>(j), fv, dot(d, fv));
    }
    acc.end_atom(i);
  }
}

// Excluded-pair correction kernel over the i-range [begin, end).
template <class Acc>
void excluded_kernel(const Box& box, const Topology& top,
                     std::span<const Vec3> pos, double alpha, size_t begin,
                     size_t end, Acc& acc) {
  ANTON_HOT_NOALLOC();
  const Vec3 box_l = box.lengths();
  const Vec3 inv_l{1.0 / box_l.x, 1.0 / box_l.y, 1.0 / box_l.z};
  for (size_t i = begin; i < end; ++i) {
    const double qi = units::kCoulomb * top.charge(static_cast<int>(i));
    if (qi == 0.0) continue;
    for (int j : top.exclusions_of(static_cast<int>(i))) {
      const double qq = qi * top.charge(j);
      if (qq == 0.0) continue;
      Vec3 d = pos[i] - pos[static_cast<size_t>(j)];
      d.x -= box_l.x * std::nearbyint(d.x * inv_l.x);
      d.y -= box_l.y * std::nearbyint(d.y * inv_l.y);
      d.z -= box_l.z * std::nearbyint(d.z * inv_l.z);
      const double r2 = norm2(d);
      const double r = std::sqrt(r2);
      const double ar = alpha * r;
      const double erf_ar = std::erf(ar);
      // Subtract E = qq erf(ar)/r.
      acc.add_excl(-qq * erf_ar / r);
      // F_i for energy -qq erf(ar)/r: gradient of erf/r is
      // (2a/sqrt(pi) exp(-a²r²) r - erf(ar)) / r²  along r̂.
      const double f_mag =
          -qq *
          (erf_ar / r - kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) / r2;
      const Vec3 fv = f_mag * d;
      acc.add_pair_direct(i, static_cast<size_t>(j), fv, dot(d, fv));
    }
  }
}

// Zero-restoring reduction: folds every per-thread buffer into `forces` and
// leaves the buffers zeroed for the next evaluation.  Summation order over t
// is fixed, so results are deterministic for a fixed thread count.
void reduce_thread_forces(ThreadPool* pool, ForceWorkspace* ws, unsigned T,
                          std::span<Vec3> forces) {
  ANTON_HOT_NOALLOC();
  pool->parallel_for(forces.size(), [&](size_t b, size_t e) {
    for (unsigned t = 0; t < T; ++t) {
      auto buf = ws->thread_force(t);
      for (size_t i = b; i < e; ++i) {
        forces[i] += buf[i];
        buf[i] = Vec3{};
      }
    }
  });
}

// Fixed-point twin: sums the per-thread fixed accumulators exactly (order
// cannot matter), converts once to double, and zero-restores the buffers.
void reduce_thread_forces_fixed(ThreadPool* pool, ForceWorkspace* ws,
                                unsigned T, std::span<Vec3> forces) {
  ANTON_HOT_NOALLOC();
  auto fold = [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      ForceFixed sum{};
      for (unsigned t = 0; t < T; ++t) {
        auto buf = ws->thread_force_fixed(t);
        sum += buf[i];
        buf[i] = ForceFixed{};
      }
      forces[i] += sum.to_vec3();
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(forces.size(), fold);
  } else {
    fold(0, forces.size());
  }
}

}  // namespace

void compute_nonbonded(const Box& box, const Topology& top,
                       const NeighborList& nlist, std::span<const Vec3> pos,
                       double alpha, std::span<Vec3> forces,
                       EnergyReport& energy, ThreadPool* pool,
                       bool shift_at_cutoff, ForceWorkspace* ws,
                       bool tabulate_erfc, bool deterministic,
                       obs::Stat* thread_stat) {
  ANTON_CHECK(nlist.built());
  ANTON_CHECK(nlist.num_atoms() == top.num_atoms());
  const double cutoff = nlist.cutoff();
  const double cutoff2 = cutoff * cutoff;
  const size_t n = pos.size();

  ForceWorkspace local;
  if (ws == nullptr) ws = &local;
  ws->build_cache(top, alpha, cutoff, shift_at_cutoff, tabulate_erfc);
  const bool use_table = tabulate_erfc && alpha > 0 && ws->tables_ready();

  const auto types = top.types();
  const auto charges = top.charges();
  // The vectorized kernel reads per-neighbor [x y z q] records from the
  // workspace's interleaved staging.
  if (use_table) ws->stage_positions(pos, charges);

  if (deterministic) {
    // Fixed-point accumulation: any chunking gives the same bits, so serial
    // and threaded paths share one code path over the per-thread buffers.
    const unsigned T =
        (pool == nullptr || n < kSerialThreshold) ? 1 : pool->size();
    ws->ensure_fixed_threads(T, n);
    auto run_fixed = [&](size_t begin, size_t end, unsigned t) {
      if (use_table) {
        FixedBatchAcc acc{ws->thread_force_fixed(t)};
        pair_kernel_simd(box, *ws, nlist, types, charges, alpha, cutoff2,
                         begin, end, acc);
        ws->partial_fixed(t) = acc.e;
      } else {
        FixedAcc acc{ws->thread_force_fixed(t)};
        pair_kernel<false>(box, *ws, nlist, pos, types, charges, alpha,
                           cutoff2, begin, end, acc);
        ws->partial_fixed(t) = acc.e;
      }
    };
    if (T <= 1) {
      const double w0 = thread_stat != nullptr ? obs::wall_seconds() : 0.0;
      run_fixed(0, n, 0);
      if (thread_stat != nullptr) thread_stat->add(obs::wall_seconds() - w0);
    } else {
      // Pair-balanced chunking (see the double path below for rationale).
      auto& bounds = ws->chunk_bounds();
      const auto starts = nlist.starts();
      const int64_t total = nlist.num_pairs();
      bounds[0] = 0;
      for (unsigned t = 1; t < T; ++t) {
        const int64_t target = total * static_cast<int64_t>(t) / T;
        const size_t b = static_cast<size_t>(
            std::lower_bound(starts.begin(), starts.end(), target) -
            starts.begin());
        bounds[t] = std::clamp(b, bounds[t - 1], n);
      }
      bounds[T] = n;
      pool->for_each_thread([&](unsigned t) {
        const double w0 =
            thread_stat != nullptr ? obs::wall_seconds() : 0.0;
        if (bounds[t] < bounds[t + 1]) {
          run_fixed(bounds[t], bounds[t + 1], t);
        } else {
          ws->partial_fixed(t) = PairEnergyPartialFixed{};
        }
        if (thread_stat != nullptr)
          thread_stat->add(obs::wall_seconds() - w0);
      });
    }
    reduce_thread_forces_fixed(T > 1 ? pool : nullptr, ws, T, forces);
    PairEnergyPartialFixed e{};
    for (unsigned t = 0; t < T; ++t) e += ws->partial_fixed(t);
    energy.lj += e.lj.to_double();
    energy.coulomb_real += e.coul.to_double();
    energy.virial += e.virial.to_double();
    return;
  }

  auto run = [&](size_t begin, size_t end,
                 std::span<Vec3> f) -> PairEnergyPartial {
    if (use_table) {
      DoubleBatchAcc acc{f};
      pair_kernel_simd(box, *ws, nlist, types, charges, alpha, cutoff2, begin,
                       end, acc);
      return acc.e;
    }
    DoubleAcc acc{f};
    pair_kernel<false>(box, *ws, nlist, pos, types, charges, alpha, cutoff2,
                       begin, end, acc);
    return acc.e;
  };

  if (pool == nullptr || pool->size() <= 1 || n < kSerialThreshold) {
    const double w0 = thread_stat != nullptr ? obs::wall_seconds() : 0.0;
    const PairEnergyPartial e = run(0, n, forces);
    if (thread_stat != nullptr) thread_stat->add(obs::wall_seconds() - w0);
    energy.lj += e.lj;
    energy.coulomb_real += e.coul;
    energy.virial += e.virial;
    return;
  }

  const unsigned T = pool->size();
  ws->ensure_threads(T, n);

  // Pair-balanced chunking: the half-list CSR front-loads neighbours onto
  // low atom indices, so equal atom ranges starve the high threads.  Split
  // atoms at equal cumulative-pair quantiles of starts_ instead.
  auto& bounds = ws->chunk_bounds();
  const auto starts = nlist.starts();
  const int64_t total = nlist.num_pairs();
  bounds[0] = 0;
  for (unsigned t = 1; t < T; ++t) {
    const int64_t target = total * static_cast<int64_t>(t) / T;
    const size_t b = static_cast<size_t>(
        std::lower_bound(starts.begin(), starts.end(), target) -
        starts.begin());
    bounds[t] = std::clamp(b, bounds[t - 1], n);
  }
  bounds[T] = n;

  pool->for_each_thread([&](unsigned t) {
    const double w0 = thread_stat != nullptr ? obs::wall_seconds() : 0.0;
    ws->partial(t) = bounds[t] < bounds[t + 1]
                         ? run(bounds[t], bounds[t + 1], ws->thread_force(t))
                         : PairEnergyPartial{};
    if (thread_stat != nullptr) thread_stat->add(obs::wall_seconds() - w0);
  });

  reduce_thread_forces(pool, ws, T, forces);

  for (unsigned t = 0; t < T; ++t) {
    energy.lj += ws->partial(t).lj;
    energy.coulomb_real += ws->partial(t).coul;
    energy.virial += ws->partial(t).virial;
  }
}

double ewald_self_energy(const Topology& top, double alpha) {
  double q2 = 0;
  for (double q : top.charges()) q2 += q * q;
  return -units::kCoulomb * alpha / std::sqrt(M_PI) * q2;
}

void compute_excluded_correction(const Box& box, const Topology& top,
                                 std::span<const Vec3> pos, double alpha,
                                 std::span<Vec3> forces, EnergyReport& energy,
                                 ThreadPool* pool, ForceWorkspace* ws,
                                 bool deterministic) {
  const size_t n = pos.size();

  if (deterministic) {
    ForceWorkspace local;
    if (ws == nullptr) ws = &local;
    const unsigned T =
        (pool == nullptr || n < kSerialThreshold) ? 1 : pool->size();
    ws->ensure_fixed_threads(T, n);
    auto run_fixed = [&](size_t begin, size_t end, unsigned t) {
      FixedAcc acc{ws->thread_force_fixed(t)};
      excluded_kernel(box, top, pos, alpha, begin, end, acc);
      ws->partial_fixed(t) = acc.e;
    };
    if (T <= 1) {
      run_fixed(0, n, 0);
    } else {
      const size_t chunk = (n + T - 1) / T;
      pool->for_each_thread([&](unsigned t) {
        const size_t begin = std::min(n, static_cast<size_t>(t) * chunk);
        const size_t end = std::min(n, begin + chunk);
        if (begin < end) {
          run_fixed(begin, end, t);
        } else {
          ws->partial_fixed(t) = PairEnergyPartialFixed{};
        }
      });
    }
    reduce_thread_forces_fixed(T > 1 ? pool : nullptr, ws, T, forces);
    PairEnergyPartialFixed e{};
    for (unsigned t = 0; t < T; ++t) e += ws->partial_fixed(t);
    energy.coulomb_excl += e.excl.to_double();
    energy.virial += e.virial.to_double();
    return;
  }

  if (pool == nullptr || pool->size() <= 1 || ws == nullptr ||
      n < kSerialThreshold) {
    DoubleAcc acc{forces};
    excluded_kernel(box, top, pos, alpha, 0, n, acc);
    energy.coulomb_excl += acc.e.excl;
    energy.virial += acc.e.virial;
    return;
  }

  const unsigned T = pool->size();
  ws->ensure_threads(T, n);
  // Exclusions are uniform across atoms (dominated by water), so static atom
  // chunks balance fine here.
  const size_t chunk = (n + T - 1) / T;
  pool->for_each_thread([&](unsigned t) {
    const size_t begin = std::min(n, static_cast<size_t>(t) * chunk);
    const size_t end = std::min(n, begin + chunk);
    if (begin < end) {
      DoubleAcc acc{ws->thread_force(t)};
      excluded_kernel(box, top, pos, alpha, begin, end, acc);
      ws->partial(t) = acc.e;
    } else {
      ws->partial(t) = PairEnergyPartial{};
    }
  });

  reduce_thread_forces(pool, ws, T, forces);

  for (unsigned t = 0; t < T; ++t) {
    energy.coulomb_excl += ws->partial(t).excl;
    energy.virial += ws->partial(t).virial;
  }
}

}  // namespace anton::md
