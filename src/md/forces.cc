#include "md/forces.h"

#include <algorithm>
#include <cmath>

#include "md/bonded.h"
#include "md/nonbonded.h"

namespace anton::md {

ForceCompute::ForceCompute(std::shared_ptr<const Topology> top, Box box,
                           MdParams params, ThreadPool* pool)
    : top_(std::move(top)),
      box_(box),
      params_(params),
      pool_(pool),
      nlist_(params.cutoff, params.skin) {
  ANTON_CHECK(top_ && top_->finalized());
  switch (params_.long_range) {
    case LongRangeMethod::kDirect:
      ewald_ = std::make_unique<EwaldDirect>(box_, params_.ewald_alpha,
                                             params_.kspace_nmax, pool_);
      break;
    case LongRangeMethod::kMesh:
      gse_ = std::make_unique<GseMesh>(box_, params_.ewald_alpha,
                                       params_.mesh_spacing,
                                       params_.gse_sigma, pool_);
      break;
    case LongRangeMethod::kNone:
      break;
  }
  if (params_.long_range != LongRangeMethod::kNone) {
    ANTON_CHECK_MSG(std::abs(top_->total_charge()) < 1e-6,
                    "Ewald requires a neutral system; net charge = "
                        << top_->total_charge());
  }
  // Build the persistent caches up front so steady-state stepping never
  // touches the allocator: premixed LJ table, prescaled charges, optional
  // erfc tables, per-thread force buffers, and the compute_all scratch.
  const double alpha =
      params_.long_range == LongRangeMethod::kNone ? 0.0 : params_.ewald_alpha;
  ws_.build_cache(*top_, alpha, params_.cutoff, params_.shift_at_cutoff,
                  params_.tabulate_erfc, params_.erfc_table_target_err);
  const size_t n = static_cast<size_t>(top_->num_atoms());
  ws_.ensure_threads(pool_ != nullptr ? pool_->size() : 1, n);
  ws_.f_long().assign(n, Vec3{});
}

void ForceCompute::warm(std::span<const Vec3> pos) { maybe_rebuild(pos); }

void ForceCompute::set_profiler(obs::PhaseProfiler* prof) {
  prof_ = prof != nullptr && prof->enabled() ? prof : nullptr;
  pair_thread_stat_ =
      prof_ != nullptr && pool_ != nullptr
          ? prof_->registry()->stat("md.pair.thread_seconds")
          : nullptr;
  if (gse_) gse_->set_profiler(prof_);
}

void ForceCompute::set_box(const Box& box) {
  box_ = box;
  if (gse_) gse_->set_box(box);
  if (ewald_) ewald_->set_box(box);
  nlist_stale_ = true;
}

void ForceCompute::maybe_rebuild(std::span<const Vec3> pos) {
  if (!nlist_.built() || nlist_stale_ ||
      nlist_.needs_rebuild(box_, pos, pool_)) {
    obs::PhaseProfiler::Scope sc(prof_, "nlist");
    nlist_.build(box_, pos, *top_, pool_);
    ++nlist_builds_;
    nlist_stale_ = false;
  }
}

EnergyReport ForceCompute::compute_short(std::span<const Vec3> pos,
                                         std::span<Vec3> forces) {
  std::fill(forces.begin(), forces.end(), Vec3{});
  maybe_rebuild(pos);
  EnergyReport e;
  {
    obs::PhaseProfiler::Scope sc(prof_, "bonded");
    compute_all_bonded(box_, *top_, pos, forces, e);
  }
  const double alpha =
      params_.long_range == LongRangeMethod::kNone ? 0.0 : params_.ewald_alpha;
  {
    obs::PhaseProfiler::Scope sc(prof_, "pair");
    compute_nonbonded(box_, *top_, nlist_, pos, alpha, forces, e, pool_,
                      params_.shift_at_cutoff, &ws_, params_.tabulate_erfc,
                      params_.deterministic_forces, pair_thread_stat_);
    if (params_.long_range != LongRangeMethod::kNone) {
      compute_excluded_correction(box_, *top_, pos, params_.ewald_alpha,
                                  forces, e, pool_, &ws_,
                                  params_.deterministic_forces);
    }
  }
  // Net-zero invariant: every short-range term except position restraints
  // (an external field, exempted below) is an internal pair interaction
  // (Newton's third law holds pair by pair), so the reduced forces must sum
  // to zero up to accumulation roundoff.  A violation means a per-thread
  // buffer was lost, double-counted, or not zero-restored.
  if constexpr (kInvariantsEnabled) {
    if (!top_->position_restraints().empty()) return e;
    Vec3 fsum{};
    double fmag = 0;
    for (const Vec3& f : forces) {
      fsum += f;
      fmag += std::abs(f.x) + std::abs(f.y) + std::abs(f.z);
    }
    const double tol = 1e-9 * fmag + 1e-6;
    ANTON_CHECK_INVARIANT(std::abs(fsum.x) <= tol &&
                              std::abs(fsum.y) <= tol &&
                              std::abs(fsum.z) <= tol,
                          "short-range forces do not sum to zero: " << fsum
                              << " (|F| mass " << fmag << ")");
  }
  return e;
}

EnergyReport ForceCompute::compute_long(std::span<const Vec3> pos,
                                        std::span<Vec3> forces) {
  obs::PhaseProfiler::Scope sc(prof_, "fft");
  std::fill(forces.begin(), forces.end(), Vec3{});
  EnergyReport e;
  switch (params_.long_range) {
    case LongRangeMethod::kDirect:
      ewald_->compute(*top_, pos, forces, e);
      e.coulomb_self += ewald_self_energy(*top_, params_.ewald_alpha);
      break;
    case LongRangeMethod::kMesh:
      gse_->compute(*top_, pos, forces, e, params_.deterministic_forces);
      e.coulomb_self += ewald_self_energy(*top_, params_.ewald_alpha);
      break;
    case LongRangeMethod::kNone:
      break;
  }
  return e;
}

EnergyReport ForceCompute::compute_all(std::span<const Vec3> pos,
                                       std::span<Vec3> forces) {
  EnergyReport e = compute_short(pos, forces);
  // Long-range scratch lives in the workspace: compute_long overwrites it,
  // so a fill suffices and no per-call vector is allocated.
  std::vector<Vec3>& f_long = ws_.f_long();
  f_long.resize(forces.size());
  const EnergyReport e_long = compute_long(pos, f_long);
  for (size_t i = 0; i < forces.size(); ++i) forces[i] += f_long[i];
  e.coulomb_kspace += e_long.coulomb_kspace;
  e.coulomb_self += e_long.coulomb_self;
  e.virial += e_long.virial;
  return e;
}

}  // namespace anton::md
