// Simulation parameters and energy bookkeeping shared by the functional MD
// engine and the machine model.
#pragma once

#include <string>

namespace anton {

enum class ThermostatKind {
  kNone,            // NVE
  kLangevin,        // stochastic, uses langevin_gamma_per_fs
  kBerendsen,       // weak coupling, uses thermostat_tau_fs
  kVelocityRescale, // deterministic exponential rescale to the target
};

enum class BarostatKind {
  kNone,
  kBerendsen,  // weak-coupling isotropic box rescaling
};

enum class LongRangeMethod {
  kNone,    // cutoff-only electrostatics (cheap, for tests)
  kDirect,  // exact Ewald with direct k-space sum (validation gold standard)
  kMesh,    // Gaussian-split Ewald on an FFT mesh (production; what Anton runs)
};

struct MdParams {
  // Pairwise range interactions.
  double cutoff = 9.0;        // Å — LJ and real-space Ewald cutoff
  double skin = 1.0;          // Å — Verlet-list skin
  // Shift pair potentials to zero at the cutoff (removes the energy jump
  // when pairs cross the cutoff; essential for NVE conservation with
  // moderate cutoffs).  Forces are unchanged.
  bool shift_at_cutoff = true;

  // Tabulated screened-Coulomb pair kernel: replaces per-pair
  // std::erfc/std::exp with cubic-Hermite table lookups in r² (the software
  // analogue of the PPIM functional tables).  The tables are refined at
  // construction until their measured max relative error is below
  // erfc_table_target_err, so the accuracy budget is explicit.
  bool tabulate_erfc = false;
  double erfc_table_target_err = 1e-9;

  // Deterministic force accumulation (the scheme Anton runs in silicon):
  // every contribution whose accumulation order could depend on the thread
  // decomposition is quantized to fixed point before summing — per-pair
  // short-range forces/energies to 32.32, GSE mesh densities to 24.40 and
  // mesh energy/virial sums to 48.16.  Fixed-point addition is exactly
  // associative and commutative, so total (short- plus long-range) forces
  // are bitwise identical for ANY thread count — not merely for a fixed
  // one, as with the default double-precision buffers.  The FFT, the GSE
  // gather and the direct-Ewald sum are data-parallel pure functions and
  // bitwise stable without quantization.  Costs a quantization of ~2^-32
  // per contribution and a few % throughput.
  bool deterministic_forces = false;

  // Ewald splitting.
  double ewald_alpha = 0.35;  // 1/Å
  LongRangeMethod long_range = LongRangeMethod::kMesh;
  int kspace_nmax = 8;        // direct Ewald: |n_x|,|n_y|,|n_z| <= nmax
  double mesh_spacing = 1.1;  // Å — target GSE mesh spacing (rounded to pow2)
  double gse_sigma = 1.2;     // Å — GSE spreading Gaussian width

  // Integration.
  double dt_fs = 2.5;         // inner timestep, femtoseconds
  int respa_k = 2;            // evaluate k-space every respa_k steps (1 = off)
  double shake_tol = 1e-8;    // relative constraint tolerance
  int shake_max_iter = 500;

  // Temperature control.  For backward compatibility, a nonzero
  // langevin_gamma_per_fs with thermostat == kNone behaves as kLangevin.
  ThermostatKind thermostat = ThermostatKind::kNone;
  double temperature_k = 300.0;
  double langevin_gamma_per_fs = 0.0;
  double thermostat_tau_fs = 100.0;  // Berendsen / rescale coupling time

  // Pressure control (isotropic).  The box and all molecule centres rescale
  // every barostat_interval steps; rigid molecules translate without
  // deformation.  Effective coupling: dV/V = -compressibility *
  // (interval*dt/tau) * (P0 - P).
  BarostatKind barostat = BarostatKind::kNone;
  double pressure_bar = 1.0;
  double barostat_tau_fs = 1000.0;
  int barostat_interval = 10;
  double compressibility_per_bar = 4.5e-5;  // liquid water

  uint64_t seed = 1234;

  // --- telemetry (all off by default; zero cost when off) ---
  // telemetry alone enables the in-memory per-phase profiler (readable via
  // Simulation::metrics()); the paths additionally stream a Chrome trace
  // and write a metrics JSON snapshot when the simulation is destroyed.
  bool telemetry = false;
  std::string trace_path;
  std::string metrics_path;
  // Attach a hardware-counter group (perf_event_open) to the profiler:
  // phases gain .ipc / .llc_miss_rate stats and the registry a
  // "md.perf.available" gauge.  Requires telemetry; ANTON_PERF=1 in the
  // environment turns it on too.  Degrades silently where perf is blocked.
  bool perf_counters = false;
};

struct EnergyReport {
  double bond = 0;
  double angle = 0;
  double dihedral = 0;
  double lj = 0;
  double pair14 = 0;          // scaled 1-4 LJ + Coulomb
  double restraint = 0;       // position + distance restraints
  double coulomb_real = 0;    // short-range erfc part (or plain if kNone)
  double coulomb_kspace = 0;  // reciprocal part
  double coulomb_self = 0;    // Ewald self-energy (negative)
  double coulomb_excl = 0;    // excluded-pair correction (negative)
  double kinetic = 0;
  // Clausius virial W = sum r_ij . F_ij over all interactions (kcal/mol).
  // Constraint forces are not included; use unconstrained systems for
  // quantitative pressure work.
  double virial = 0;

  double potential() const {
    return bond + angle + dihedral + lj + pair14 + restraint +
           coulomb_real + coulomb_kspace + coulomb_self + coulomb_excl;
  }
  double total() const { return potential() + kinetic; }
};

}  // namespace anton
