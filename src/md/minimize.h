// Constrained steepest-descent energy minimisation.
//
// Synthetic systems come off the builder with steric clashes (random-walk
// solute chains, lattice water).  A few hundred clamped steepest-descent
// steps relax them enough for stable dynamics — the same role the
// preparation pipeline plays ahead of a real Anton run.
#pragma once

#include "chem/system.h"
#include "common/threadpool.h"
#include "md/params.h"

namespace anton::md {

struct MinimizeResult {
  int steps = 0;
  double initial_energy = 0;
  double final_energy = 0;
  double max_force = 0;  // kcal/mol/Å at exit
};

// Steepest descent with per-step displacement clamped to max_disp (Å);
// constraints re-satisfied by SHAKE after every move.  Stops when the
// largest atomic force drops below f_tol or after max_steps.
MinimizeResult minimize_energy(System& system, const MdParams& params,
                               int max_steps = 200, double max_disp = 0.1,
                               double f_tol = 10.0,
                               ThreadPool* pool = nullptr);

}  // namespace anton::md
