// Force orchestration: combines bonded, range-limited nonbonded and
// long-range electrostatic contributions, managing the neighbour list and
// the RESPA short/long split.
#pragma once

#include <memory>
#include <span>

#include "chem/system.h"
#include "common/threadpool.h"
#include "md/ewald.h"
#include "md/gse.h"
#include "md/neighborlist.h"
#include "md/params.h"
#include "md/workspace.h"
#include "obs/profiler.h"

namespace anton::md {

class ForceCompute {
 public:
  ForceCompute(std::shared_ptr<const Topology> top, Box box, MdParams params,
               ThreadPool* pool = nullptr);

  const MdParams& params() const { return params_; }

  // Pre-sizes all persistent scratch and builds the neighbour list for the
  // given configuration, so subsequent compute_short calls perform no heap
  // allocation in steady state.
  void warm(std::span<const Vec3> pos);

  ForceWorkspace& workspace() { return ws_; }

  // Short-range ("fast") forces: bonded terms, LJ + real-space Coulomb,
  // excluded-pair correction.  Rebuilds the neighbour list when stale.
  // Forces are *overwritten* (not accumulated).
  EnergyReport compute_short(std::span<const Vec3> pos,
                             std::span<Vec3> forces);

  // Long-range ("slow") forces: reciprocal-space Ewald + self energy.
  // Forces are overwritten.  No-op (zero forces) for kNone.
  EnergyReport compute_long(std::span<const Vec3> pos, std::span<Vec3> forces);

  // Both, summed; for single-timestep integration and energy reporting.
  EnergyReport compute_all(std::span<const Vec3> pos, std::span<Vec3> forces);

  const NeighborList& nlist() const { return nlist_; }
  int64_t pair_count() const { return nlist_.num_pairs(); }
  int64_t nlist_builds() const { return nlist_builds_; }

  // Rescales the periodic cell (barostat coupling): updates the long-range
  // solvers in place — the GSE mesh keeps its buffers and FFT plan whenever
  // the mesh dimensions survive — and flags the neighbour list for rebuild.
  // All other caches (erfc tables, LJ mixing, charges) are box-independent
  // and untouched, so no allocation-heavy reconstruction happens here.
  void set_box(const Box& box);

  const GseMesh* gse() const { return gse_.get(); }

  // Attaches (or detaches, with nullptr) the owning simulation's phase
  // profiler: force evaluation then reports "nlist", "bonded", "pair" and
  // "fft" phase spans, plus the per-thread pair-loop imbalance stat
  // "md.pair.thread_seconds" and the long-range stage stats
  // ("md.gse.{spread,gather}.seconds", "md.fft.{x,y,z}.seconds").
  void set_profiler(obs::PhaseProfiler* prof);

 private:
  void maybe_rebuild(std::span<const Vec3> pos);

  std::shared_ptr<const Topology> top_;
  Box box_;
  MdParams params_;
  ThreadPool* pool_;
  ForceWorkspace ws_;
  NeighborList nlist_;
  std::unique_ptr<EwaldDirect> ewald_;
  std::unique_ptr<GseMesh> gse_;
  int64_t nlist_builds_ = 0;
  bool nlist_stale_ = false;  // set_box invalidates the neighbour grid
  obs::PhaseProfiler* prof_ = nullptr;
  obs::Stat* pair_thread_stat_ = nullptr;
};

}  // namespace anton::md
