#include "md/gse.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace anton::md {

namespace {
// Signed frequency for DFT bin f of an n-point transform.
int signed_freq(int f, int n) { return f <= n / 2 ? f : f - n; }
}  // namespace

GseMesh::GseMesh(const Box& box, double alpha, double spacing, double sigma)
    : box_(box),
      alpha_(alpha),
      sigma_(sigma),
      nx_(next_power_of_two(
          std::max(4, static_cast<int>(std::ceil(box.lengths().x / spacing))))),
      ny_(next_power_of_two(
          std::max(4, static_cast<int>(std::ceil(box.lengths().y / spacing))))),
      nz_(next_power_of_two(
          std::max(4, static_cast<int>(std::ceil(box.lengths().z / spacing))))),
      fft_(nx_, ny_, nz_) {
  ANTON_CHECK_MSG(alpha > 0 && sigma > 0, "bad GSE parameters");
  // The kernel carries exp(-k²/4α² + σ²k²); boundedness needs σ < 1/(2α).
  ANTON_CHECK_MSG(sigma * alpha < 0.5,
                  "GSE deconvolution unstable: need sigma < 1/(2 alpha), got "
                  "sigma*alpha = "
                      << sigma * alpha);
  h_ = {box.lengths().x / nx_, box.lengths().y / ny_, box.lengths().z / nz_};

  const double support = 3.2 * sigma;
  rx_ = std::max(1, static_cast<int>(std::ceil(support / h_.x)));
  ry_ = std::max(1, static_cast<int>(std::ceil(support / h_.y)));
  rz_ = std::max(1, static_cast<int>(std::ceil(support / h_.z)));
  ANTON_CHECK_MSG(2 * rx_ + 1 <= nx_ && 2 * ry_ + 1 <= ny_ &&
                      2 * rz_ + 1 <= nz_,
                  "GSE spread support exceeds the mesh — box too small for "
                  "this spacing/sigma");

  // Precompute the k-space kernel: C·4π·exp(-k²/4α²)/k² · exp(+σ²k²) (the
  // last factor deconvolves the spread *and* pre-compensates the gather).
  // The 1/V of the Fourier series cancels against the N of the inverse DFT
  // and one vol_cell from the Riemann sum (N·vol_cell = V).  k=0 dropped
  // (neutral systems).
  green_.assign(mesh_points(), 0.0);
  virial_factor_.assign(mesh_points(), 0.0);
  const double c = units::kCoulomb * 4.0 * M_PI;
  const Vec3 two_pi_over_l{2.0 * M_PI / box.lengths().x,
                           2.0 * M_PI / box.lengths().y,
                           2.0 * M_PI / box.lengths().z};
  for (int fz = 0; fz < nz_; ++fz) {
    for (int fy = 0; fy < ny_; ++fy) {
      for (int fx = 0; fx < nx_; ++fx) {
        if (fx == 0 && fy == 0 && fz == 0) continue;
        const double kx = signed_freq(fx, nx_) * two_pi_over_l.x;
        const double ky = signed_freq(fy, ny_) * two_pi_over_l.y;
        const double kz = signed_freq(fz, nz_) * two_pi_over_l.z;
        const double k2 = kx * kx + ky * ky + kz * kz;
        green_[fft_.index(fx, fy, fz)] =
            c * std::exp(-k2 / (4.0 * alpha * alpha) + sigma * sigma * k2) /
            k2;
        // Analytic reciprocal virial factor of the *physical* energy the
        // mesh approximates: W_k = E_k (1 - k²/(2α²)).  The spreading
        // Gaussian and its deconvolution cancel and contribute nothing.
        virial_factor_[fft_.index(fx, fy, fz)] =
            1.0 - k2 / (2.0 * alpha * alpha);
      }
    }
  }
  mesh_.assign(mesh_points(), Complex{});
  rho_.assign(mesh_points(), 0.0);
}

void GseMesh::spread(const Topology& top, std::span<const Vec3> pos) {
  std::fill(rho_.begin(), rho_.end(), 0.0);
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma_ * sigma_);
  const double norm3 =
      1.0 / std::pow(2.0 * M_PI * sigma_ * sigma_, 1.5);
  const auto q = top.charges();

  std::vector<double> wx(static_cast<size_t>(2 * rx_ + 1));
  std::vector<double> wy(static_cast<size_t>(2 * ry_ + 1));
  std::vector<double> wz(static_cast<size_t>(2 * rz_ + 1));

  for (size_t i = 0; i < pos.size(); ++i) {
    if (q[i] == 0.0) continue;
    const Vec3 p = box_.wrap(pos[i]);
    const int cx = static_cast<int>(p.x / h_.x);
    const int cy = static_cast<int>(p.y / h_.y);
    const int cz = static_cast<int>(p.z / h_.z);
    // Separable per-axis Gaussian factors (unnormalised per axis; the 3D
    // normalisation is applied once in norm3).
    for (int d = -rx_; d <= rx_; ++d) {
      const double dx = (cx + d) * h_.x - p.x;
      wx[static_cast<size_t>(d + rx_)] = std::exp(-dx * dx * inv_two_sigma2);
    }
    for (int d = -ry_; d <= ry_; ++d) {
      const double dy = (cy + d) * h_.y - p.y;
      wy[static_cast<size_t>(d + ry_)] = std::exp(-dy * dy * inv_two_sigma2);
    }
    for (int d = -rz_; d <= rz_; ++d) {
      const double dz = (cz + d) * h_.z - p.z;
      wz[static_cast<size_t>(d + rz_)] = std::exp(-dz * dz * inv_two_sigma2);
    }
    const double qn = q[i] * norm3;
    for (int dz = -rz_; dz <= rz_; ++dz) {
      const int mz = (cz + dz % nz_ + nz_) % nz_;
      const double wzq = wz[static_cast<size_t>(dz + rz_)] * qn;
      for (int dy = -ry_; dy <= ry_; ++dy) {
        const int my = (cy + dy % ny_ + ny_) % ny_;
        const double wyz = wy[static_cast<size_t>(dy + ry_)] * wzq;
        const size_t row = (static_cast<size_t>(mz) * ny_ + my) * nx_;
        for (int dx = -rx_; dx <= rx_; ++dx) {
          const int mx = (cx + dx % nx_ + nx_) % nx_;
          rho_[row + static_cast<size_t>(mx)] +=
              wx[static_cast<size_t>(dx + rx_)] * wyz;
        }
      }
    }
  }
}

void GseMesh::compute(const Topology& top, std::span<const Vec3> pos,
                      std::span<Vec3> forces, EnergyReport& energy) {
  ANTON_CHECK(static_cast<int>(pos.size()) == top.num_atoms());
  spread(top, pos);

  for (size_t m = 0; m < mesh_.size(); ++m) {
    mesh_[m] = Complex{rho_[m], 0.0};
  }
  fft_.forward(mesh_);
  // Per-k energy e_k = vol_cell/(2N) green |ρ̂|² (Parseval); the k-space
  // virial accumulates alongside the potential multiply.
  const double e_k_scale =
      (h_.x * h_.y * h_.z) / (2.0 * static_cast<double>(mesh_points()));
  double w_kspace = 0.0;
  for (size_t m = 0; m < mesh_.size(); ++m) {
    w_kspace +=
        e_k_scale * green_[m] * virial_factor_[m] * std::norm(mesh_[m]);
    mesh_[m] *= green_[m];
  }
  energy.virial += w_kspace;
  fft_.inverse(mesh_);
  // mesh_ now holds the (deconvolved) potential φ at mesh points.

  const double vol_cell = h_.x * h_.y * h_.z;
  double e = 0.0;
  for (size_t m = 0; m < mesh_.size(); ++m) {
    e += rho_[m] * mesh_[m].real();
  }
  energy.coulomb_kspace += 0.5 * vol_cell * e;

  // Gather forces: F_i = -q_i vol_cell / σ² Σ_m φ(m) G_σ(d) d,
  // d = r_m - r_i.
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma_ * sigma_);
  const double norm3 = 1.0 / std::pow(2.0 * M_PI * sigma_ * sigma_, 1.5);
  const double inv_sigma2 = 1.0 / (sigma_ * sigma_);
  const auto q = top.charges();

  std::vector<double> wx(static_cast<size_t>(2 * rx_ + 1));
  std::vector<double> wy(static_cast<size_t>(2 * ry_ + 1));
  std::vector<double> wz(static_cast<size_t>(2 * rz_ + 1));
  std::vector<double> dxs(wx.size()), dys(wy.size()), dzs(wz.size());

  for (size_t i = 0; i < pos.size(); ++i) {
    if (q[i] == 0.0) continue;
    const Vec3 p = box_.wrap(pos[i]);
    const int cx = static_cast<int>(p.x / h_.x);
    const int cy = static_cast<int>(p.y / h_.y);
    const int cz = static_cast<int>(p.z / h_.z);
    for (int d = -rx_; d <= rx_; ++d) {
      const double dx = (cx + d) * h_.x - p.x;
      dxs[static_cast<size_t>(d + rx_)] = dx;
      wx[static_cast<size_t>(d + rx_)] = std::exp(-dx * dx * inv_two_sigma2);
    }
    for (int d = -ry_; d <= ry_; ++d) {
      const double dy = (cy + d) * h_.y - p.y;
      dys[static_cast<size_t>(d + ry_)] = dy;
      wy[static_cast<size_t>(d + ry_)] = std::exp(-dy * dy * inv_two_sigma2);
    }
    for (int d = -rz_; d <= rz_; ++d) {
      const double dz = (cz + d) * h_.z - p.z;
      dzs[static_cast<size_t>(d + rz_)] = dz;
      wz[static_cast<size_t>(d + rz_)] = std::exp(-dz * dz * inv_two_sigma2);
    }
    Vec3 acc{};
    for (int dz = -rz_; dz <= rz_; ++dz) {
      const int mz = (cz + dz % nz_ + nz_) % nz_;
      const double wzv = wz[static_cast<size_t>(dz + rz_)];
      for (int dy = -ry_; dy <= ry_; ++dy) {
        const int my = (cy + dy % ny_ + ny_) % ny_;
        const double wyz = wy[static_cast<size_t>(dy + ry_)] * wzv;
        const size_t row = (static_cast<size_t>(mz) * ny_ + my) * nx_;
        for (int dx = -rx_; dx <= rx_; ++dx) {
          const int mx = (cx + dx % nx_ + nx_) % nx_;
          const double w = wx[static_cast<size_t>(dx + rx_)] * wyz;
          const double phi = mesh_[row + static_cast<size_t>(mx)].real();
          const double c = phi * w;
          acc += c * Vec3{dxs[static_cast<size_t>(dx + rx_)],
                          dys[static_cast<size_t>(dy + ry_)],
                          dzs[static_cast<size_t>(dz + rz_)]};
        }
      }
    }
    forces[i] += (-q[i] * vol_cell * norm3 * inv_sigma2) * acc;
  }
}

}  // namespace anton::md
