#include "md/gse.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/simd.h"
#include "common/units.h"

namespace anton::md {

namespace {

// Signed frequency for DFT bin f of an n-point transform.
int signed_freq(int f, int n) { return f <= n / 2 ? f : f - n; }

int mesh_dim(double length, double spacing) {
  return next_power_of_two(
      std::max(4, static_cast<int>(std::ceil(length / spacing))));
}

// Separable per-axis Gaussian factors (unnormalised per axis; the 3D
// normalisation is applied once in norm3), plus the displacement and the
// pre-wrapped mesh index for each support cell.  Wrapping is a single
// conditional (|k| <= r < n and c in [0, n)), replacing the two integer
// modulos per mesh point of the original inner loops.
void axis_weights(int c, int r, int n, double h, double pcoord,
                  double inv_two_sigma2, double* w, double* d, int* idx) {
  ANTON_HOT_NOALLOC();
  for (int k = -r; k <= r; ++k) {
    const double dd = (c + k) * h - pcoord;
    const int j = k + r;
    w[j] = std::exp(-dd * dd * inv_two_sigma2);
    if (d != nullptr) d[j] = dd;
    int m = c + k;
    if (m < 0) {
      m += n;
    } else if (m >= n) {
      m -= n;
    }
    idx[j] = m;
  }
}

}  // namespace

GseMesh::GseMesh(const Box& box, double alpha, double spacing, double sigma,
                 ThreadPool* pool)
    : box_(box),
      alpha_(alpha),
      sigma_(sigma),
      spacing_(spacing),
      pool_(pool),
      nx_(mesh_dim(box.lengths().x, spacing)),
      ny_(mesh_dim(box.lengths().y, spacing)),
      nz_(mesh_dim(box.lengths().z, spacing)),
      fft_(nx_, ny_, nz_, pool) {
  ANTON_CHECK_MSG(alpha > 0 && sigma > 0, "bad GSE parameters");
  // The kernel carries exp(-k²/4α² + σ²k²); boundedness needs σ < 1/(2α).
  ANTON_CHECK_MSG(sigma * alpha < 0.5,
                  "GSE deconvolution unstable: need sigma < 1/(2 alpha), got "
                  "sigma*alpha = "
                      << sigma * alpha);
  derive_geometry();
  green_.assign(fft_.half_points(), 0.0);
  virial_factor_.assign(fft_.half_points(), 0.0);
  build_tables();
  mesh_.assign(fft_.half_points(), Complex{});
  rho_.assign(mesh_points(), 0.0);
  phi_.assign(mesh_points(), 0.0);
}

void GseMesh::derive_geometry() {
  h_ = {box_.lengths().x / nx_, box_.lengths().y / ny_,
        box_.lengths().z / nz_};
  const double support = 3.2 * sigma_;
  rx_ = std::max(1, static_cast<int>(std::ceil(support / h_.x)));
  ry_ = std::max(1, static_cast<int>(std::ceil(support / h_.y)));
  rz_ = std::max(1, static_cast<int>(std::ceil(support / h_.z)));
  ANTON_CHECK_MSG(2 * rx_ + 1 <= nx_ && 2 * ry_ + 1 <= ny_ &&
                      2 * rz_ + 1 <= nz_,
                  "GSE spread support exceeds the mesh — box too small for "
                  "this spacing/sigma");
}

// Precompute the k-space kernel over the non-redundant half-spectrum:
// C·4π·exp(-k²/4α²)/k² · exp(+σ²k²) (the last factor deconvolves the spread
// *and* pre-compensates the gather).  The 1/V of the Fourier series cancels
// against the N of the inverse DFT and one vol_cell from the Riemann sum
// (N·vol_cell = V).  k=0 dropped (neutral systems).  Each table entry is an
// independent pure function of its frequency, so the build parallelizes
// over z-planes with bitwise-stable results.
void GseMesh::build_tables() {
  const double c = units::kCoulomb * 4.0 * M_PI;
  const Vec3 two_pi_over_l{2.0 * M_PI / box_.lengths().x,
                           2.0 * M_PI / box_.lengths().y,
                           2.0 * M_PI / box_.lengths().z};
  const int hnx = fft_.half_nx();
  const double inv_4a2 = 1.0 / (4.0 * alpha_ * alpha_);
  const double inv_2a2 = 1.0 / (2.0 * alpha_ * alpha_);
  const double s2 = sigma_ * sigma_;
  auto fill_planes = [&](size_t zb, size_t ze) {
    for (size_t fzs = zb; fzs < ze; ++fzs) {
      const int fz = static_cast<int>(fzs);
      const double kz = signed_freq(fz, nz_) * two_pi_over_l.z;
      for (int fy = 0; fy < ny_; ++fy) {
        const double ky = signed_freq(fy, ny_) * two_pi_over_l.y;
        for (int hx = 0; hx < hnx; ++hx) {
          const size_t m = fft_.half_index(hx, fy, fz);
          if (hx == 0 && fy == 0 && fz == 0) {
            green_[m] = 0.0;
            virial_factor_[m] = 0.0;
            continue;
          }
          // hx <= nx/2, so the signed x frequency is hx itself.
          const double kx = hx * two_pi_over_l.x;
          const double k2 = kx * kx + ky * ky + kz * kz;
          green_[m] = c * std::exp(-k2 * inv_4a2 + s2 * k2) / k2;
          // Analytic reciprocal virial factor of the *physical* energy the
          // mesh approximates: W_k = E_k (1 - k²/(2α²)).  The spreading
          // Gaussian and its deconvolution cancel and contribute nothing.
          virial_factor_[m] = 1.0 - k2 * inv_2a2;
        }
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(static_cast<size_t>(nz_), fill_planes);
  } else {
    fill_planes(0, static_cast<size_t>(nz_));
  }
  ++table_builds_;
}

void GseMesh::set_box(const Box& box) {
  const Vec3 cur = box_.lengths();
  const Vec3 next = box.lengths();
  if (next.x == cur.x && next.y == cur.y && next.z == cur.z) return;
  box_ = box;
  const int nnx = mesh_dim(next.x, spacing_);
  const int nny = mesh_dim(next.y, spacing_);
  const int nnz = mesh_dim(next.z, spacing_);
  if (nnx != nx_ || nny != ny_ || nnz != nz_) {
    nx_ = nnx;
    ny_ = nny;
    nz_ = nnz;
    fft_ = Fft3D(nx_, ny_, nz_, pool_);
    green_.assign(fft_.half_points(), 0.0);
    virial_factor_.assign(fft_.half_points(), 0.0);
    mesh_.assign(fft_.half_points(), Complex{});
    rho_.assign(mesh_points(), 0.0);
    phi_.assign(mesh_points(), 0.0);
    // Re-plumb the pass stats the fresh Fft3D lost.
    set_profiler(prof_);
  }
  derive_geometry();
  build_tables();
  update_mesh_gauges();
}

void GseMesh::set_profiler(obs::PhaseProfiler* prof) {
  prof_ = prof != nullptr && prof->enabled() ? prof : nullptr;
  if (prof_ == nullptr) {
    spread_stat_ = nullptr;
    gather_stat_ = nullptr;
    fft_.set_pass_stats(nullptr, nullptr, nullptr);
    return;
  }
  obs::MetricsRegistry* reg = prof_->registry();
  spread_stat_ = reg->stat("md.gse.spread.seconds");
  gather_stat_ = reg->stat("md.gse.gather.seconds");
  fft_.set_pass_stats(reg->stat("md.fft.x.seconds"),
                      reg->stat("md.fft.y.seconds"),
                      reg->stat("md.fft.z.seconds"));
  update_mesh_gauges();
}

void GseMesh::update_mesh_gauges() {
  if (prof_ == nullptr) return;
  obs::MetricsRegistry* reg = prof_->registry();
  reg->gauge("md.gse.mesh.nx")->set(nx_);
  reg->gauge("md.gse.mesh.ny")->set(ny_);
  reg->gauge("md.gse.mesh.nz")->set(nz_);
  reg->gauge("md.gse.mesh.points")->set(static_cast<double>(mesh_points()));
  reg->gauge("md.gse.support_points")->set(support_points());
}

template <bool kFixed>
void GseMesh::spread_range(const Topology& top, std::span<const Vec3> pos,
                           size_t begin, size_t end, double* rho,
                           MeshFixed* rho_fx, GseThreadScratch& s) const {
  ANTON_HOT_NOALLOC();
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma_ * sigma_);
  const double norm3 = 1.0 / std::pow(2.0 * M_PI * sigma_ * sigma_, 1.5);
  const auto q = top.charges();
  const int sx = 2 * rx_ + 1, sy = 2 * ry_ + 1, sz = 2 * rz_ + 1;
  double* wx = s.wx.data();
  double* wy = s.wy.data();
  double* wz = s.wz.data();
  int* ix = s.ix.data();
  int* iy = s.iy.data();
  int* iz = s.iz.data();
  for (size_t i = begin; i < end; ++i) {
    if (q[i] == 0.0) continue;
    const Vec3 p = box_.wrap(pos[i]);
    const int cx = static_cast<int>(p.x / h_.x);
    const int cy = static_cast<int>(p.y / h_.y);
    const int cz = static_cast<int>(p.z / h_.z);
    axis_weights(cx, rx_, nx_, h_.x, p.x, inv_two_sigma2, wx, nullptr, ix);
    axis_weights(cy, ry_, ny_, h_.y, p.y, inv_two_sigma2, wy, nullptr, iy);
    axis_weights(cz, rz_, nz_, h_.z, p.z, inv_two_sigma2, wz, nullptr, iz);
    const double qn = q[i] * norm3;
    // Innermost x loop: the separable weight products wx[c]·wyz are formed a
    // vector at a time (per-lane multiplies, bitwise what the scalar loop
    // computed), then scattered in c order so both the fixed-point
    // quantization order and the double accumulation order are unchanged.
    // The axis arrays are padded to a lane multiple (GseWorkspace::ensure),
    // so whole-lane loads past sx stay in bounds; only live lanes scatter.
    constexpr int W = static_cast<int>(simd::kLanesD);
    for (int a = 0; a < sz; ++a) {
      const size_t plane = static_cast<size_t>(iz[a]) * ny_;
      const double wzq = wz[a] * qn;
      for (int b = 0; b < sy; ++b) {
        const size_t row = (plane + static_cast<size_t>(iy[b])) * nx_;
        const simd::VecD v_wyz = simd::VecD::broadcast(wy[b] * wzq);
        for (int c = 0; c < sx; c += W) {
          double vbuf[W];
          (simd::VecD::loadu(wx + c) * v_wyz).storeu(vbuf);
          const int lim = sx - c < W ? sx - c : W;
          for (int l = 0; l < lim; ++l) {
            if constexpr (kFixed) {
              rho_fx[row + static_cast<size_t>(ix[c + l])] +=
                  MeshFixed::from_double(vbuf[l]);
            } else {
              rho[row + static_cast<size_t>(ix[c + l])] += vbuf[l];
            }
          }
        }
      }
    }
  }
}

void GseMesh::spread(const Topology& top, std::span<const Vec3> pos,
                     bool deterministic) {
  ANTON_HOT_NOALLOC();
  const size_t n = pos.size();
  const unsigned nthreads = ws_.num_threads();
  if (!deterministic && nthreads <= 1) {
    std::fill(rho_.begin(), rho_.end(), 0.0);
    spread_range<false>(top, pos, 0, n, rho_.data(), nullptr, ws_.thread(0));
    return;
  }
  // Per-thread accumulation: deterministic mode quantizes each contribution
  // into the fixed-point grid (exactly associative, so the merged result is
  // bitwise independent of the thread count); otherwise per-thread doubles
  // merged in fixed thread order (bitwise stable for a given thread count).
  const size_t chunk = (n + nthreads - 1) / nthreads;
  auto spread_chunk = [&](unsigned t) {
    const size_t b = std::min(n, static_cast<size_t>(t) * chunk);
    const size_t e = std::min(n, b + chunk);
    GseThreadScratch& s = ws_.thread(t);
    if (deterministic) {
      spread_range<true>(top, pos, b, e, nullptr, s.rho_fx.data(), s);
    } else {
      spread_range<false>(top, pos, b, e, s.rho.data(), nullptr, s);
    }
  };
  if (nthreads > 1) {
    pool_->for_each_thread(spread_chunk);
  } else {
    spread_chunk(0);
  }
  // Zero-restoring merge: fold every thread grid into rho_ in thread order,
  // leaving the per-thread grids zeroed for the next call.
  auto merge_range = [&](size_t b, size_t e) {
    if (deterministic) {
      for (size_t m = b; m < e; ++m) {
        MeshFixed acc{};
        for (unsigned t = 0; t < nthreads; ++t) {
          MeshFixed& v = ws_.thread(t).rho_fx[m];
          acc += v;
          v = MeshFixed{};
        }
        rho_[m] = acc.to_double();
      }
    } else {
      for (size_t m = b; m < e; ++m) {
        double acc = 0.0;
        for (unsigned t = 0; t < nthreads; ++t) {
          double& v = ws_.thread(t).rho[m];
          acc += v;
          v = 0.0;
        }
        rho_[m] = acc;
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(mesh_points(), merge_range);
  } else {
    merge_range(0, mesh_points());
  }
}

// Multiplies the half-spectrum by the Green's function and accumulates the
// k-space virial.  Each half-spectrum point carries weight 2 except the
// self-conjugate x columns (hx == 0 and hx == nx/2), which represent a
// single full-spectrum point.
void GseMesh::kspace_multiply(EnergyReport& energy, bool deterministic) {
  ANTON_HOT_NOALLOC();
  const int hnx = fft_.half_nx();
  const int half_fx = nx_ / 2;
  const size_t hp = fft_.half_points();
  const unsigned nthreads = ws_.num_threads();
  const size_t chunk = (hp + nthreads - 1) / nthreads;
  auto multiply_chunk = [&](unsigned t) {
    const size_t b = std::min(hp, static_cast<size_t>(t) * chunk);
    const size_t e = std::min(hp, b + chunk);
    double w_acc = 0.0;
    MeshEnergyFixed w_fx{};
    for (size_t m = b; m < e; ++m) {
      const double g = green_[m];
      const int hx = static_cast<int>(m % static_cast<size_t>(hnx));
      const double weight = (hx == 0 || hx == half_fx) ? 1.0 : 2.0;
      const double term =
          weight * g * virial_factor_[m] * std::norm(mesh_[m]);
      if (deterministic) {
        w_fx += MeshEnergyFixed::from_double(term);
      } else {
        w_acc += term;
      }
      mesh_[m] *= g;
    }
    ws_.thread(t).w = w_acc;
    ws_.thread(t).w_fx = w_fx;
  };
  if (nthreads > 1) {
    pool_->for_each_thread(multiply_chunk);
  } else {
    multiply_chunk(0);
  }
  // Per-k energy e_k = vol_cell/(2N) green |ρ̂|² (Parseval); the scale is
  // factored out of the per-point sum.
  const double e_k_scale =
      (h_.x * h_.y * h_.z) / (2.0 * static_cast<double>(mesh_points()));
  if (deterministic) {
    MeshEnergyFixed w_total{};
    for (unsigned t = 0; t < nthreads; ++t) w_total += ws_.thread(t).w_fx;
    energy.virial += e_k_scale * w_total.to_double();
  } else {
    double w_total = 0.0;
    for (unsigned t = 0; t < nthreads; ++t) w_total += ws_.thread(t).w;
    energy.virial += e_k_scale * w_total;
  }
}

// Σ_m ρ(m)·φ(m) over the real mesh, reduced per thread.
double GseMesh::mesh_energy_dot(bool deterministic) {
  ANTON_HOT_NOALLOC();
  const size_t np = mesh_points();
  const unsigned nthreads = ws_.num_threads();
  const size_t chunk = (np + nthreads - 1) / nthreads;
  auto dot_chunk = [&](unsigned t) {
    const size_t b = std::min(np, static_cast<size_t>(t) * chunk);
    const size_t e = std::min(np, b + chunk);
    double acc = 0.0;
    MeshEnergyFixed acc_fx{};
    for (size_t m = b; m < e; ++m) {
      const double term = rho_[m] * phi_[m];
      if (deterministic) {
        acc_fx += MeshEnergyFixed::from_double(term);
      } else {
        acc += term;
      }
    }
    ws_.thread(t).e = acc;
    ws_.thread(t).e_fx = acc_fx;
  };
  if (nthreads > 1) {
    pool_->for_each_thread(dot_chunk);
  } else {
    dot_chunk(0);
  }
  if (deterministic) {
    MeshEnergyFixed total{};
    for (unsigned t = 0; t < nthreads; ++t) total += ws_.thread(t).e_fx;
    return total.to_double();
  }
  double total = 0.0;
  for (unsigned t = 0; t < nthreads; ++t) total += ws_.thread(t).e;
  return total;
}

// Gather forces: F_i = -q_i vol_cell / σ² Σ_m φ(m) G_σ(d) d, d = r_m - r_i.
// Each atom reads the shared potential grid and writes only forces[i], so
// the pass is data-parallel and bitwise independent of the thread count.
void GseMesh::gather_range(const Topology& top, std::span<const Vec3> pos,
                           std::span<Vec3> forces, size_t begin, size_t end,
                           GseThreadScratch& s) const {
  ANTON_HOT_NOALLOC();
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma_ * sigma_);
  const double norm3 = 1.0 / std::pow(2.0 * M_PI * sigma_ * sigma_, 1.5);
  const double inv_sigma2 = 1.0 / (sigma_ * sigma_);
  const double vol_cell = h_.x * h_.y * h_.z;
  const auto q = top.charges();
  const int sx = 2 * rx_ + 1, sy = 2 * ry_ + 1, sz = 2 * rz_ + 1;
  double* wx = s.wx.data();
  double* wy = s.wy.data();
  double* wz = s.wz.data();
  double* dxs = s.dxs.data();
  double* dys = s.dys.data();
  double* dzs = s.dzs.data();
  int* ix = s.ix.data();
  int* iy = s.iy.data();
  int* iz = s.iz.data();
  const double* phi = phi_.data();
  for (size_t i = begin; i < end; ++i) {
    if (q[i] == 0.0) continue;
    const Vec3 p = box_.wrap(pos[i]);
    const int cx = static_cast<int>(p.x / h_.x);
    const int cy = static_cast<int>(p.y / h_.y);
    const int cz = static_cast<int>(p.z / h_.z);
    axis_weights(cx, rx_, nx_, h_.x, p.x, inv_two_sigma2, wx, dxs, ix);
    axis_weights(cy, ry_, ny_, h_.y, p.y, inv_two_sigma2, wy, dys, iy);
    axis_weights(cz, rz_, nz_, h_.z, p.z, inv_two_sigma2, wz, dzs, iz);
    // Vectorized over the innermost x axis: φ is gathered through the
    // pre-wrapped indices, the x force component accumulates in vector
    // lanes across the whole support, and the y/z components reuse the
    // per-row Σ_c φ·w partial (their displacement factors are constant
    // along x).  Padded lanes carry zero weight into index 0, contributing
    // exact zeros.  Everything is per-atom pure, so the result stays
    // bitwise independent of the thread count and of the SIMD backend.
    using simd::VecD;
    using simd::VecI;
    constexpr int W = static_cast<int>(simd::kLanesD);
    Vec3 acc{};
    VecD accx = VecD::zero();
    for (int a = 0; a < sz; ++a) {
      const size_t plane = static_cast<size_t>(iz[a]) * ny_;
      const double wzv = wz[a];
      for (int b = 0; b < sy; ++b) {
        const size_t row = (plane + static_cast<size_t>(iy[b])) * nx_;
        const VecD v_wyz = VecD::broadcast(wy[b] * wzv);
        VecD rsum = VecD::zero();
        for (int c = 0; c < sx; c += W) {
          const VecD w = VecD::loadu(wx + c) * v_wyz;
          const VecD cphi =
              VecD::gather(phi + row, VecI::loadu(ix + c)) * w;
          accx = fma(cphi, VecD::loadu(dxs + c), accx);
          rsum = rsum + cphi;
        }
        const double rs = rsum.reduce_ordered();
        acc.y += rs * dys[b];
        acc.z += rs * dzs[a];
      }
    }
    acc.x = accx.reduce_ordered();
    forces[i] += (-q[i] * vol_cell * norm3 * inv_sigma2) * acc;
  }
}

void GseMesh::gather(const Topology& top, std::span<const Vec3> pos,
                     std::span<Vec3> forces) {
  ANTON_HOT_NOALLOC();
  const size_t n = pos.size();
  const unsigned nthreads = ws_.num_threads();
  if (nthreads <= 1) {
    gather_range(top, pos, forces, 0, n, ws_.thread(0));
    return;
  }
  const size_t chunk = (n + nthreads - 1) / nthreads;
  pool_->for_each_thread([&](unsigned t) {
    const size_t b = std::min(n, static_cast<size_t>(t) * chunk);
    const size_t e = std::min(n, b + chunk);
    gather_range(top, pos, forces, b, e, ws_.thread(t));
  });
}

void GseMesh::compute(const Topology& top, std::span<const Vec3> pos,
                      std::span<Vec3> forces, EnergyReport& energy,
                      bool deterministic) {
  ANTON_HOT_NOALLOC();
  ANTON_CHECK(static_cast<int>(pos.size()) == top.num_atoms());
  const unsigned nthreads = pool_ != nullptr ? pool_->size() : 1;
  ws_.ensure(nthreads, 2 * rx_ + 1, 2 * ry_ + 1, 2 * rz_ + 1, mesh_points(),
             /*threaded_grids=*/nthreads > 1 && !deterministic,
             /*fixed_grids=*/deterministic);

  const bool timed = spread_stat_ != nullptr;
  double t0 = timed ? obs::wall_seconds() : 0.0;
  spread(top, pos, deterministic);
  if (timed) spread_stat_->add(obs::wall_seconds() - t0);

  fft_.forward_real(rho_, mesh_);
  kspace_multiply(energy, deterministic);
  fft_.inverse_real(mesh_, phi_);

  const double vol_cell = h_.x * h_.y * h_.z;
  energy.coulomb_kspace += 0.5 * vol_cell * mesh_energy_dot(deterministic);

  t0 = timed ? obs::wall_seconds() : 0.0;
  gather(top, pos, forces);
  if (timed && gather_stat_ != nullptr) {
    gather_stat_->add(obs::wall_seconds() - t0);
  }
}

}  // namespace anton::md
