// The host MD engine: constrained velocity-Verlet with impulse RESPA
// multiple time-stepping and an optional Langevin thermostat.
//
// This engine plays two roles in the reproduction:
//   1. Gold model — the machine simulator's functional results are checked
//      against it.
//   2. Commodity baseline — google-benchmark measures its ns/day on the
//      host for the paper's "180× faster than commodity" comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chem/system.h"
#include "common/threadpool.h"
#include "md/constraints.h"
#include "md/forces.h"
#include "md/params.h"

namespace anton::md {

class Simulation {
 public:
  Simulation(System system, MdParams params, ThreadPool* pool = nullptr);

  // Advances n timesteps (inner steps; RESPA blocks are handled
  // transparently).
  void step(int n = 1);

  const System& system() const { return system_; }
  System& system() { return system_; }
  const MdParams& params() const { return params_; }
  int64_t step_count() const { return step_count_; }

  // Full-accuracy energies of the *current* configuration (fresh force
  // evaluation; does not advance time).
  EnergyReport energies();

  // Potential-energy terms from the most recent force evaluation (cheap).
  const EnergyReport& last_energy() const { return last_energy_; }

  ForceCompute& forces() { return *force_; }
  const ForceCompute& force_compute() const { return *force_; }

  ShakeStats last_shake() const { return last_shake_; }

 private:
  void single_step();
  void apply_thermostat(double dt);
  void apply_langevin(double dt);
  void apply_barostat();

  System system_;
  MdParams params_;
  // unique_ptr so the barostat can rebuild the force stack after a box
  // rescale (the GSE mesh and neighbour grid are box-dependent).
  std::unique_ptr<ForceCompute> force_;
  ThreadPool* pool_;
  std::vector<Vec3> f_short_;
  std::vector<Vec3> f_long_;
  std::vector<Vec3> ref_pos_;  // pre-step positions for SHAKE
  EnergyReport last_energy_;
  double last_long_virial_ = 0;  // reciprocal-space virial from the last
                                 // RESPA outer step (see single_step)
  ShakeStats last_shake_;
  int64_t step_count_ = 0;
  double dt_;  // internal units
  bool forces_fresh_ = false;
};

}  // namespace anton::md
