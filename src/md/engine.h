// The host MD engine: constrained velocity-Verlet with impulse RESPA
// multiple time-stepping and an optional Langevin thermostat.
//
// This engine plays two roles in the reproduction:
//   1. Gold model — the machine simulator's functional results are checked
//      against it.
//   2. Commodity baseline — google-benchmark measures its ns/day on the
//      host for the paper's "180× faster than commodity" comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chem/system.h"
#include "common/threadpool.h"
#include "md/constraints.h"
#include "md/forces.h"
#include "md/params.h"
#include "obs/metrics.h"
#include "obs/perfcounters.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace anton::md {

class Simulation {
 public:
  Simulation(System system, MdParams params, ThreadPool* pool = nullptr);
  ~Simulation();

  // Advances n timesteps (inner steps; RESPA blocks are handled
  // transparently).
  void step(int n = 1);

  const System& system() const { return system_; }
  System& system() { return system_; }
  const MdParams& params() const { return params_; }
  int64_t step_count() const { return step_count_; }

  // Full-accuracy energies of the *current* configuration (fresh force
  // evaluation; does not advance time).
  EnergyReport energies();

  // Potential-energy terms from the most recent force evaluation (cheap).
  const EnergyReport& last_energy() const { return last_energy_; }

  ForceCompute& forces() { return *force_; }
  const ForceCompute& force_compute() const { return *force_; }

  ShakeStats last_shake() const { return last_shake_; }

  // Redirects telemetry into an externally owned registry/trace (the
  // machine model does this so MD wall-clock spans share the trace with the
  // DES timeline).  Passing nullptrs disables telemetry entirely.
  // Overrides whatever MdParams telemetry knobs set up at construction.
  void use_telemetry(obs::MetricsRegistry* registry, obs::TraceWriter* trace);

  // The active metrics registry: the externally supplied one, the internal
  // one when MdParams enabled telemetry, or nullptr when off.
  obs::MetricsRegistry* metrics() { return metrics_; }

  // Writes the metrics snapshot to MdParams::metrics_path (no-op when the
  // path is empty or telemetry is external).  Also called on destruction.
  void write_metrics() const;

 private:
  void single_step();
  void apply_thermostat(double dt);
  void apply_langevin(double dt);
  void apply_barostat();

  System system_;
  MdParams params_;
  // unique_ptr so the barostat can rebuild the force stack after a box
  // rescale (the GSE mesh and neighbour grid are box-dependent).
  std::unique_ptr<ForceCompute> force_;
  ThreadPool* pool_;
  std::vector<Vec3> f_short_;
  std::vector<Vec3> f_long_;
  std::vector<Vec3> ref_pos_;  // pre-step positions for SHAKE
  EnergyReport last_energy_;
  double last_long_virial_ = 0;  // reciprocal-space virial from the last
                                 // RESPA outer step (see single_step)
  ShakeStats last_shake_;
  int64_t step_count_ = 0;
  double dt_;  // internal units
  bool forces_fresh_ = false;

  // Telemetry.  own_metrics_/own_trace_ back the MdParams knobs;
  // use_telemetry() swaps in external sinks instead.
  obs::MetricsRegistry own_metrics_;
  std::unique_ptr<obs::TraceWriter> own_trace_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::PhaseProfiler profiler_;
  obs::Stat* step_stat_ = nullptr;
  // Hardware counters for the profiler (MdParams::perf_counters or
  // ANTON_PERF=1); bound to the constructing thread.
  std::unique_ptr<obs::PerfCounters> perf_;
};

}  // namespace anton::md
