// Gaussian-split Ewald (GSE) reciprocal-space solver on an FFT mesh.
//
// This is the long-range electrostatics algorithm the Anton machines run:
// charges are spread onto a regular mesh with Gaussians, the Poisson
// equation is solved with a small 3D FFT, and forces are gathered back with
// the same Gaussians.  The spreading/gathering smearing is deconvolved in
// k-space, so the method converges to the exact Ewald reciprocal sum as the
// mesh refines.  O(N + M log M).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "chem/topology.h"
#include "common/vec3.h"
#include "fft/fft.h"
#include "geom/box.h"
#include "md/params.h"

namespace anton::md {

class GseMesh {
 public:
  // spacing: target mesh spacing (each axis rounds the grid size up to a
  // power of two); sigma: spreading Gaussian width (Å).  Stability requires
  // sigma < 1/(sqrt(2)·alpha) so the k-space deconvolution stays bounded.
  GseMesh(const Box& box, double alpha, double spacing, double sigma);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  size_t mesh_points() const {
    return static_cast<size_t>(nx_) * ny_ * nz_;
  }

  // Adds reciprocal-space forces; energy lands in energy.coulomb_kspace.
  void compute(const Topology& top, std::span<const Vec3> pos,
               std::span<Vec3> forces, EnergyReport& energy);

  // Number of mesh points each charge touches (spread support volume) —
  // consumed by the machine model to cost the charge-spreading phase.
  int support_points() const {
    return (2 * rx_ + 1) * (2 * ry_ + 1) * (2 * rz_ + 1);
  }

 private:
  void spread(const Topology& top, std::span<const Vec3> pos);

  Box box_;
  double alpha_;
  double sigma_;
  int nx_, ny_, nz_;
  int rx_, ry_, rz_;  // support radius in cells per axis
  Vec3 h_;            // mesh spacing per axis
  Fft3D fft_;
  std::vector<double> green_;     // k-space kernel (includes deconvolution)
  std::vector<double> virial_factor_;  // per-k (1 - k²/2α² + 2σ²k²)
  std::vector<Complex> mesh_;     // work buffer
  std::vector<double> rho_;       // saved charge mesh for the energy sum
};

}  // namespace anton::md
