// Gaussian-split Ewald (GSE) reciprocal-space solver on an FFT mesh.
//
// This is the long-range electrostatics algorithm the Anton machines run:
// charges are spread onto a regular mesh with Gaussians, the Poisson
// equation is solved with a small 3D FFT, and forces are gathered back with
// the same Gaussians.  The spreading/gathering smearing is deconvolved in
// k-space, so the method converges to the exact Ewald reciprocal sum as the
// mesh refines.  O(N + M log M).
//
// The whole pipeline is threaded over an optional ThreadPool and performs no
// heap allocation in steady state: spreading accumulates into per-thread
// charge grids merged by a zero-restoring reduction (the PR 1 force-buffer
// scheme), the FFT runs through the real-to-complex half-spectrum path, the
// k-space multiply and energy sums reduce per-thread partials, and the force
// gather is data-parallel over atoms (each writes only its own force).
//
// Determinism: with `deterministic` set, every spread contribution and every
// k-space energy/virial term is quantized to fixed point before
// accumulation, making the sums exactly associative — forces and energies
// are bitwise identical for any thread count.  The gather and the FFT are
// per-atom/per-line pure functions and are bitwise stable unconditionally.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "chem/topology.h"
#include "common/threadpool.h"
#include "common/vec3.h"
#include "fft/fft.h"
#include "geom/box.h"
#include "md/params.h"
#include "md/workspace.h"
#include "obs/profiler.h"

namespace anton::md {

class GseMesh {
 public:
  // spacing: target mesh spacing (each axis rounds the grid size up to a
  // power of two); sigma: spreading Gaussian width (Å).  Stability requires
  // sigma < 1/(sqrt(2)·alpha) so the k-space deconvolution stays bounded.
  GseMesh(const Box& box, double alpha, double spacing, double sigma,
          ThreadPool* pool = nullptr);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  size_t mesh_points() const {
    return static_cast<size_t>(nx_) * ny_ * nz_;
  }

  // Adds reciprocal-space forces; energy lands in energy.coulomb_kspace.
  // With `deterministic` set, results are bitwise identical for any thread
  // count (fixed-point accumulation; see header comment).
  void compute(const Topology& top, std::span<const Vec3> pos,
               std::span<Vec3> forces, EnergyReport& energy,
               bool deterministic = false);

  // Rebox for the barostat.  No-op when the lengths are unchanged; when the
  // mesh dimensions survive the resize every buffer is reused and only the
  // k-space tables are re-derived (in parallel); only a dimension change
  // re-plans the FFT.
  void set_box(const Box& box);

  // Number of k-space table builds performed (1 after construction) —
  // observability for the barostat rebuild-skip.
  int64_t table_builds() const { return table_builds_; }

  // Number of mesh points each charge touches (spread support volume) —
  // consumed by the machine model to cost the charge-spreading phase.
  int support_points() const {
    return (2 * rx_ + 1) * (2 * ry_ + 1) * (2 * rz_ + 1);
  }

  // Attaches (or detaches, with nullptr) the owning simulation's profiler:
  // registers the spread/gather stage stats ("md.gse.{spread,gather}.
  // seconds"), the per-axis FFT pass stats ("md.fft.{x,y,z}.seconds") and
  // the mesh geometry gauges ("md.gse.mesh.*", "md.gse.support_points").
  void set_profiler(obs::PhaseProfiler* prof);

 private:
  void derive_geometry();
  void build_tables();
  void update_mesh_gauges();
  void spread(const Topology& top, std::span<const Vec3> pos,
              bool deterministic);
  template <bool kFixed>
  void spread_range(const Topology& top, std::span<const Vec3> pos,
                    size_t begin, size_t end, double* rho, MeshFixed* rho_fx,
                    GseThreadScratch& s) const;
  void kspace_multiply(EnergyReport& energy, bool deterministic);
  double mesh_energy_dot(bool deterministic);
  void gather(const Topology& top, std::span<const Vec3> pos,
              std::span<Vec3> forces);
  void gather_range(const Topology& top, std::span<const Vec3> pos,
                    std::span<Vec3> forces, size_t begin, size_t end,
                    GseThreadScratch& s) const;

  Box box_;
  double alpha_;
  double sigma_;
  double spacing_;
  ThreadPool* pool_;
  int nx_, ny_, nz_;
  int rx_, ry_, rz_;  // support radius in cells per axis
  Vec3 h_;            // mesh spacing per axis
  Fft3D fft_;
  std::vector<double> green_;          // half-spectrum k-space kernel
  std::vector<double> virial_factor_;  // half-spectrum (1 - k²/2α²)
  std::vector<Complex> mesh_;          // half-spectrum work buffer
  std::vector<double> rho_;            // charge mesh (real grid)
  std::vector<double> phi_;            // potential mesh (real grid)
  GseWorkspace ws_;
  int64_t table_builds_ = 0;

  obs::PhaseProfiler* prof_ = nullptr;
  obs::Stat* spread_stat_ = nullptr;
  obs::Stat* gather_stat_ = nullptr;
};

}  // namespace anton::md
