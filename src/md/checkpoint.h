// Checkpointing and trajectory output.
//
// Binary checkpoints capture exact phase-space state (positions, velocities,
// step counter) for bitwise-identical restart — the property Anton's
// deterministic fixed-point arithmetic exists to guarantee.  The XYZ writer
// emits human-readable trajectories for external visualisation tools.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "chem/system.h"

namespace anton::md {

struct Checkpoint {
  int64_t step = 0;
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
};

// Binary serialisation; format is versioned and checked on load.
void save_checkpoint(std::ostream& os, const Checkpoint& cp);
Checkpoint load_checkpoint(std::istream& is);

void save_checkpoint_file(const std::string& path, const Checkpoint& cp);
Checkpoint load_checkpoint_file(const std::string& path);

// Captures / restores a System's state.
Checkpoint capture(const System& system, int64_t step);
void restore(System& system, const Checkpoint& cp);

// Appends one frame in XYZ format (element guessed from the atom type
// name's first letter).
void append_xyz_frame(std::ostream& os, const System& system,
                      const std::string& comment = "");

}  // namespace anton::md
