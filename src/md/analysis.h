// Trajectory analysis: radial distribution functions and transport
// observables.  Used by the validation tests (liquid-water structure is a
// sensitive end-to-end check of the force field + integrator + long-range
// solver) and by downstream users of the library.
#pragma once

#include <span>
#include <vector>

#include "chem/system.h"
#include "common/stats.h"

namespace anton::md {

// Accumulates g(r) between two atom index sets over trajectory frames.
class RdfAccumulator {
 public:
  // r range [0, r_max) with `bins` bins.
  RdfAccumulator(double r_max, int bins);

  // Adds one frame.  `group_a` and `group_b` are atom indices; pass the
  // same span twice for a self-RDF (i<j pairs counted once).
  void add_frame(const System& system, std::span<const int> group_a,
                 std::span<const int> group_b);

  // Normalised g(r): bin count / (ideal-gas count at the group-b density).
  std::vector<double> g_of_r() const;
  std::vector<double> r_centers() const;
  int frames() const { return frames_; }

  // Location of the first maximum of g(r) beyond r_min_search.
  double first_peak_r(double r_min_search = 1.0) const;

 private:
  double r_max_;
  int bins_;
  std::vector<double> counts_;
  double pair_norm_ = 0;  // accumulated N_a * rho_b per frame
  int frames_ = 0;
};

// Convenience: indices of all atoms of a given force-field type.
std::vector<int> atoms_of_type(const Topology& top, int type);

// Mean-squared displacement from a reference frame (diffusion diagnostics);
// positions must be unwrapped (the engine never wraps).
double mean_squared_displacement(std::span<const Vec3> reference,
                                 std::span<const Vec3> current);

}  // namespace anton::md
