// Holonomic bond-length constraints: SHAKE (positions) and RATTLE
// (velocities).  Rigid 3-site water is handled by the same iteration over
// its three constraints — the classic M-SHAKE special case Anton's geometry
// cores execute in software.
#pragma once

#include <span>

#include "chem/topology.h"
#include "common/vec3.h"
#include "geom/box.h"

namespace anton::md {

struct ShakeStats {
  int iterations = 0;
  double max_violation = 0;  // relative, after convergence
  bool converged = false;
};

// Adjusts `pos` so that every constraint is satisfied to |r²-d²|/d² <= tol.
// `ref` holds the positions *before* the unconstrained update (constraint
// directions are evaluated there, as in standard SHAKE).  If `vel` is
// non-empty, the position corrections are also applied to velocities as
// Δp/dt (the velocity half of constrained velocity Verlet).
ShakeStats shake(const Box& box, const Topology& top,
                 std::span<const Vec3> ref, std::span<Vec3> pos,
                 std::span<Vec3> vel, double dt, double tol, int max_iter);

// Projects velocity components along constrained bonds to zero (RATTLE
// second stage): after this, d/dt |r_ij|² = 0 for every constraint.
ShakeStats rattle(const Box& box, const Topology& top,
                  std::span<const Vec3> pos, std::span<Vec3> vel, double tol,
                  int max_iter);

// Max relative constraint violation of a configuration (diagnostics/tests).
double max_constraint_violation(const Box& box, const Topology& top,
                                std::span<const Vec3> pos);

}  // namespace anton::md
