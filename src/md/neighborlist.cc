#include "md/neighborlist.h"

#include <algorithm>

#include "common/error.h"
#include "geom/cells.h"

namespace anton {

NeighborList::NeighborList(double cutoff, double skin)
    : cutoff_(cutoff), skin_(skin) {
  ANTON_CHECK_MSG(cutoff > 0 && skin >= 0, "bad neighbour-list parameters");
}

void NeighborList::build(const Box& box, std::span<const Vec3> positions,
                         const Topology& top) {
  const double rl = list_radius();
  ANTON_CHECK_MSG(rl <= box.max_cutoff(),
                  "list radius " << rl << " exceeds minimum-image limit "
                                 << box.max_cutoff());
  const int n = static_cast<int>(positions.size());
  ANTON_CHECK(n == top.num_atoms());

  CellGrid grid(box, rl);
  grid.bin(positions);

  const double rl2 = rl * rl;
  std::vector<std::vector<int>> per_atom(static_cast<size_t>(n));

  const bool tiny_grid =
      grid.nx() < 3 || grid.ny() < 3 || grid.nz() < 3;

  if (tiny_grid) {
    // Stencils alias on tiny grids; fall back to O(N²) which is only hit by
    // very small test systems.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (box.distance2(positions[static_cast<size_t>(i)],
                          positions[static_cast<size_t>(j)]) < rl2 &&
            !top.excluded(i, j)) {
          per_atom[static_cast<size_t>(i)].push_back(j);
        }
      }
    }
  } else {
    for (int c = 0; c < grid.num_cells(); ++c) {
      const auto atoms_c = grid.cell_atoms(c);
      for (int nc : grid.half_stencil(c)) {
        const auto atoms_n = grid.cell_atoms(nc);
        for (int a : atoms_c) {
          for (int b : atoms_n) {
            if (nc == c && b <= a) continue;
            const int i = std::min(a, b);
            const int j = std::max(a, b);
            if (box.distance2(positions[static_cast<size_t>(i)],
                              positions[static_cast<size_t>(j)]) >= rl2) {
              continue;
            }
            if (top.excluded(i, j)) continue;
            per_atom[static_cast<size_t>(i)].push_back(j);
          }
        }
      }
    }
  }

  starts_.assign(static_cast<size_t>(n) + 1, 0);
  int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += static_cast<int64_t>(per_atom[static_cast<size_t>(i)].size());
    starts_[static_cast<size_t>(i) + 1] = total;
  }
  list_.clear();
  list_.reserve(static_cast<size_t>(total));
  for (int i = 0; i < n; ++i) {
    auto& v = per_atom[static_cast<size_t>(i)];
    std::sort(v.begin(), v.end());
    list_.insert(list_.end(), v.begin(), v.end());
  }
  ref_positions_.assign(positions.begin(), positions.end());
}

bool NeighborList::needs_rebuild(const Box& box,
                                 std::span<const Vec3> positions) const {
  if (ref_positions_.size() != positions.size()) return true;
  const double limit = 0.5 * skin_;
  const double limit2 = limit * limit;
  for (size_t i = 0; i < positions.size(); ++i) {
    if (norm2(box.min_image(positions[i], ref_positions_[i])) > limit2) {
      return true;
    }
  }
  return false;
}

}  // namespace anton
