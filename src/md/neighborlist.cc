#include "md/neighborlist.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"
#include "geom/cells.h"

namespace anton {

namespace {
// Below this, threading a build or a rebuild check costs more than it saves.
constexpr size_t kSerialThreshold = 2048;
}  // namespace

NeighborList::NeighborList(double cutoff, double skin)
    : cutoff_(cutoff), skin_(skin) {
  ANTON_CHECK_MSG(cutoff > 0 && skin >= 0, "bad neighbour-list parameters");
}

NeighborList::~NeighborList() = default;

// Enumerates candidate pairs for cells [cell_begin, cell_end) into `shard`.
// Distances use the cell-image displacement wa - wb - shift, which avoids
// the per-candidate divisions of Box::min_image and is exact for every pair
// inside the list radius (see CellGrid::half_stencil_shifts).
void NeighborList::collect_cells(const CellGrid& grid, const Topology& top,
                                 double rl2, int cell_begin, int cell_end,
                                 BuildShard& shard) const {
  ANTON_HOT_NOALLOC();
  int sten_cells[14];
  Vec3 sten_shifts[14];
  const Vec3* wp = wrapped_.data();
  for (int c = cell_begin; c < cell_end; ++c) {
    const auto atoms_c = grid.cell_atoms(c);
    if (atoms_c.empty()) continue;
    const int ns = grid.half_stencil_shifts(c, sten_cells, sten_shifts);
    for (int k = 0; k < ns; ++k) {
      const int nc = sten_cells[k];
      const Vec3 s = sten_shifts[k];
      const auto atoms_n = grid.cell_atoms(nc);
      for (int a : atoms_c) {
        const Vec3 pa = wp[a] - s;
        for (int b : atoms_n) {
          if (nc == c && b <= a) continue;
          const Vec3 d = pa - wp[b];
          if (norm2(d) >= rl2) continue;
          const int i = std::min(a, b);
          const int j = std::max(a, b);
          if (top.excluded(i, j)) continue;
          // Amortized growth into the persistent shard: allocation-free once
          // capacities settle (asserted by the steady-state allocation test).
          shard.pair_i.push_back(i);  // anton-lint: allow(hot-alloc)
          shard.pair_j.push_back(j);  // anton-lint: allow(hot-alloc)
          ++shard.counts[static_cast<size_t>(i)];
        }
      }
    }
  }
}

// Counting pass: per-atom totals -> CSR starts_, shard counts -> scatter
// cursors (disjoint slots per shard), then race-free scatter and a per-atom
// sort so the layout matches the serial build exactly.
void NeighborList::merge_shards(int n, unsigned nshards, ThreadPool* pool) {
  starts_.assign(static_cast<size_t>(n) + 1, 0);
  int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    int64_t cursor = total;
    for (unsigned t = 0; t < nshards; ++t) {
      auto& counts = shards_[t].counts;
      const int c = counts[static_cast<size_t>(i)];
      counts[static_cast<size_t>(i)] = static_cast<int>(cursor);
      cursor += c;
    }
    total = cursor;
    starts_[static_cast<size_t>(i) + 1] = total;
  }
  list_.resize(static_cast<size_t>(total));

  auto scatter = [&](unsigned t) {
    if (t >= nshards) return;
    BuildShard& shard = shards_[t];
    auto& cursors = shard.counts;
    const size_t npairs = shard.pair_i.size();
    for (size_t k = 0; k < npairs; ++k) {
      list_[static_cast<size_t>(
          cursors[static_cast<size_t>(shard.pair_i[k])]++)] = shard.pair_j[k];
    }
  };
  auto sort_range = [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      std::sort(list_.begin() + starts_[i], list_.begin() + starts_[i + 1]);
    }
  };
  if (pool != nullptr && nshards > 1) {
    pool->for_each_thread(scatter);
    pool->parallel_for(static_cast<size_t>(n), sort_range);
  } else {
    for (unsigned t = 0; t < nshards; ++t) scatter(t);
    sort_range(0, static_cast<size_t>(n));
  }
}

void NeighborList::build(const Box& box, std::span<const Vec3> positions,
                         const Topology& top, ThreadPool* pool) {
  const double rl = list_radius();
  ANTON_CHECK_MSG(rl <= box.max_cutoff(),
                  "list radius " << rl << " exceeds minimum-image limit "
                                 << box.max_cutoff());
  const int n = static_cast<int>(positions.size());
  ANTON_CHECK(n == top.num_atoms());

  if (grid_ == nullptr) {
    grid_ = std::make_unique<CellGrid>(box, rl);
  } else {
    grid_->reset(box, rl);
  }
  CellGrid& grid = *grid_;
  grid.bin(positions);

  const double rl2 = rl * rl;
  const bool tiny_grid =
      grid.nx() < 3 || grid.ny() < 3 || grid.nz() < 3;
  const unsigned nshards =
      (pool == nullptr || tiny_grid ||
       positions.size() < kSerialThreshold)
          ? 1
          : std::min(pool->size(),
                     static_cast<unsigned>(grid.num_cells()));

  if (shards_.size() < nshards) shards_.resize(nshards);
  for (unsigned t = 0; t < nshards; ++t) {
    shards_[t].pair_i.clear();
    shards_[t].pair_j.clear();
    shards_[t].counts.assign(static_cast<size_t>(n), 0);
  }

  if (tiny_grid) {
    // Stencils alias on tiny grids; fall back to O(N²) which is only hit by
    // very small test systems.
    BuildShard& shard = shards_[0];
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (box.distance2(positions[static_cast<size_t>(i)],
                          positions[static_cast<size_t>(j)]) < rl2 &&
            !top.excluded(i, j)) {
          shard.pair_i.push_back(i);
          shard.pair_j.push_back(j);
          ++shard.counts[static_cast<size_t>(i)];
        }
      }
    }
    merge_shards(n, 1, nullptr);
  } else {
    // Wrap once so the collection loop can use shift-based displacements
    // (no divisions); for positions already in-box this is the identity.
    wrapped_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      wrapped_[static_cast<size_t>(i)] =
          box.wrap(positions[static_cast<size_t>(i)]);
    }

    // Split cells so each shard owns a contiguous range with roughly equal
    // atoms (cells are CSR-ordered, so grid starts give cumulative atoms).
    const int ncells = grid.num_cells();
    shard_cell_begin_.assign(nshards + 1, 0);
    shard_cell_begin_[nshards] = ncells;
    for (unsigned t = 1; t < nshards; ++t) {
      const int target =
          static_cast<int>(static_cast<int64_t>(n) * t / nshards);
      int lo = shard_cell_begin_[t - 1], hi = ncells;
      while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (grid.cell_start(mid) < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      shard_cell_begin_[t] = lo;
    }

    if (nshards > 1) {
      pool->for_each_thread([&](unsigned t) {
        if (t < nshards) {
          collect_cells(grid, top, rl2, shard_cell_begin_[t],
                        shard_cell_begin_[t + 1], shards_[t]);
        }
      });
    } else {
      collect_cells(grid, top, rl2, 0, ncells, shards_[0]);
    }
    merge_shards(n, nshards, nshards > 1 ? pool : nullptr);
  }

  ref_positions_.assign(positions.begin(), positions.end());

  if constexpr (kInvariantsEnabled) validate();
}

void NeighborList::validate() const {
  ANTON_CHECK_MSG(built(), "validate() on an unbuilt neighbour list");
  const int n = num_atoms();
  ANTON_CHECK_MSG(starts_[0] == 0, "CSR starts must begin at 0");
  ANTON_CHECK_MSG(starts_[static_cast<size_t>(n)] ==
                      static_cast<int64_t>(list_.size()),
                  "CSR starts must span the pair list exactly: starts["
                      << n << "]=" << starts_[static_cast<size_t>(n)]
                      << " list size " << list_.size());
  for (int i = 0; i < n; ++i) {
    const int64_t b = starts_[static_cast<size_t>(i)];
    const int64_t e = starts_[static_cast<size_t>(i) + 1];
    ANTON_CHECK_MSG(b <= e, "CSR starts not monotone at atom " << i);
    int prev = i;  // rows hold j > i, strictly ascending
    for (int64_t k = b; k < e; ++k) {
      const int j = list_[static_cast<size_t>(k)];
      ANTON_CHECK_MSG(j > prev && j < n,
                      "CSR row " << i << " malformed: neighbour " << j
                                 << " after " << prev << " (n=" << n << ")");
      prev = j;
    }
  }
}

bool NeighborList::needs_rebuild(const Box& box,
                                 std::span<const Vec3> positions,
                                 ThreadPool* pool) const {
  ANTON_HOT_NOALLOC();
  if (ref_positions_.size() != positions.size()) return true;
  const double limit = 0.5 * skin_;
  const double limit2 = limit * limit;
  const size_t n = positions.size();
  if (pool == nullptr || pool->size() <= 1 || n < kSerialThreshold) {
    for (size_t i = 0; i < n; ++i) {
      if (norm2(box.min_image(positions[i], ref_positions_[i])) > limit2) {
        return true;
      }
    }
    return false;
  }
  std::atomic<bool> moved{false};
  pool->parallel_for(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end;) {
      const size_t stop = std::min(end, i + 256);
      for (; i < stop; ++i) {
        if (norm2(box.min_image(positions[i], ref_positions_[i])) > limit2) {
          moved.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (moved.load(std::memory_order_relaxed)) return;
    }
  });
  return moved.load(std::memory_order_relaxed);
}

}  // namespace anton
