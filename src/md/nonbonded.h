// Range-limited nonbonded forces: Lennard-Jones plus the real-space
// (erfc-screened) part of Ewald electrostatics, evaluated over a Verlet
// neighbour list.  This is exactly the work Anton's HTIS pipelines perform;
// the machine model derives PPIM occupancy from the same pair counts.
#pragma once

#include <span>

#include "chem/topology.h"
#include "common/threadpool.h"
#include "common/vec3.h"
#include "geom/box.h"
#include "md/neighborlist.h"
#include "md/params.h"
#include "md/workspace.h"
#include "obs/metrics.h"

namespace anton::md {

// Accumulates LJ + real-space Coulomb forces/energies over the list.
// If `pool` is non-null the pair loop is parallelised with per-thread force
// buffers (deterministic for a fixed thread count); work is split at equal
// cumulative-pair quantiles of the half-list CSR, and the cross-thread
// reduction runs in parallel.
//
// Electrostatics mode:
//   - alpha > 0: erfc(alpha r)/r screened Coulomb (Ewald real-space part)
//   - alpha == 0: plain cutoff Coulomb (LongRangeMethod::kNone)
//
// With shift_at_cutoff, each pair's LJ and Coulomb energies are shifted so
// they vanish at the cutoff (forces unchanged) — the conserved quantity is
// then continuous as pairs cross the cutoff.
//
// Passing a ForceWorkspace makes steady-state evaluation allocation-free:
// the premixed LJ type-pair table, prescaled charges, per-thread buffers and
// (optionally) the tabulated erfc kernel all persist in it.  Without one, a
// temporary workspace is built per call (convenient for tests).  With
// tabulate_erfc (and alpha > 0), per-pair std::erfc/std::exp are replaced by
// cubic-Hermite table lookups in r²; accuracy is bounded by the workspace's
// table build (see ForceWorkspace::build_cache).
// With deterministic, every per-pair contribution is quantized to 32.32
// fixed point before accumulation (MdParams::deterministic_forces): the
// result is bitwise identical across ALL thread counts, serial included.
// With thread_stat, each worker records the wall-clock seconds of its own
// chunk of the threaded pair loop — the spread of that stat is the load
// imbalance across threads.
void compute_nonbonded(const Box& box, const Topology& top,
                       const NeighborList& nlist, std::span<const Vec3> pos,
                       double alpha, std::span<Vec3> forces,
                       EnergyReport& energy, ThreadPool* pool = nullptr,
                       bool shift_at_cutoff = false,
                       ForceWorkspace* ws = nullptr,
                       bool tabulate_erfc = false,
                       bool deterministic = false,
                       obs::Stat* thread_stat = nullptr);

// Ewald self-energy: -C * alpha/sqrt(pi) * sum q_i^2.  Pure energy term.
double ewald_self_energy(const Topology& top, double alpha);

// Excluded-pair correction: the reciprocal sum includes *all* pairs, so for
// every topologically excluded pair we subtract the interaction of the
// screening charges: E -= C q_i q_j erf(alpha r)/r, with matching forces.
// With a pool and workspace the atom loop runs threaded over the same
// per-thread buffers as compute_nonbonded (deterministic for a fixed thread
// count).
void compute_excluded_correction(const Box& box, const Topology& top,
                                 std::span<const Vec3> pos, double alpha,
                                 std::span<Vec3> forces, EnergyReport& energy,
                                 ThreadPool* pool = nullptr,
                                 ForceWorkspace* ws = nullptr,
                                 bool deterministic = false);

}  // namespace anton::md
