#include "md/bonded.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace anton::md {

void compute_bonds(const Box& box, const Topology& top,
                   std::span<const Vec3> pos, std::span<Vec3> forces,
                   EnergyReport& energy) {
  for (const auto& b : top.bonds()) {
    const Vec3 d = box.min_image(pos[static_cast<size_t>(b.i)],
                                 pos[static_cast<size_t>(b.j)]);
    const double r = norm(d);
    const double dr = r - b.r0;
    energy.bond += b.k * dr * dr;
    // F_i = -dE/dr_i = -2 k (r - r0) d̂
    const double fmag = -2.0 * b.k * dr / r;
    const Vec3 f = fmag * d;
    forces[static_cast<size_t>(b.i)] += f;
    forces[static_cast<size_t>(b.j)] -= f;
    energy.virial += dot(d, f);
  }
}

void compute_angles(const Box& box, const Topology& top,
                    std::span<const Vec3> pos, std::span<Vec3> forces,
                    EnergyReport& energy) {
  for (const auto& a : top.angles()) {
    const Vec3 u = box.min_image(pos[static_cast<size_t>(a.i)],
                                 pos[static_cast<size_t>(a.j)]);
    const Vec3 v = box.min_image(pos[static_cast<size_t>(a.k)],
                                 pos[static_cast<size_t>(a.j)]);
    const double lu = norm(u), lv = norm(v);
    double c = dot(u, v) / (lu * lv);
    c = std::clamp(c, -1.0, 1.0);
    const double theta = std::acos(c);
    const double s = std::sqrt(std::max(1e-12, 1.0 - c * c));
    const double dtheta = theta - a.theta0;
    energy.angle += a.k_theta * dtheta * dtheta;
    const double de_dtheta = 2.0 * a.k_theta * dtheta;

    // dθ/dr_i = -(v̂ - cosθ û) / (|u| sinθ);  F = -dE/dθ dθ/dr.
    const Vec3 uh = u / lu, vh = v / lv;
    const Vec3 fi = (de_dtheta / (lu * s)) * (vh - c * uh);
    const Vec3 fk = (de_dtheta / (lv * s)) * (uh - c * vh);
    forces[static_cast<size_t>(a.i)] += fi;
    forces[static_cast<size_t>(a.k)] += fk;
    forces[static_cast<size_t>(a.j)] -= fi + fk;
    // Virial with the apex as origin (translation-invariant: term forces
    // sum to zero).
    energy.virial += dot(u, fi) + dot(v, fk);
  }
}

double dihedral_angle(const Box& box, const Vec3& ri, const Vec3& rj,
                      const Vec3& rk, const Vec3& rl) {
  const Vec3 b1 = box.min_image(rj, ri);
  const Vec3 b2 = box.min_image(rk, rj);
  const Vec3 b3 = box.min_image(rl, rk);
  const Vec3 n1 = cross(b1, b2);
  const Vec3 n2 = cross(b2, b3);
  const double x = dot(n1, n2);
  const double y = dot(cross(n1, n2), b2) / norm(b2);
  return std::atan2(y, x);
}

void compute_dihedrals(const Box& box, const Topology& top,
                       std::span<const Vec3> pos, std::span<Vec3> forces,
                       EnergyReport& energy) {
  for (const auto& d : top.dihedrals()) {
    const Vec3& ri = pos[static_cast<size_t>(d.i)];
    const Vec3& rj = pos[static_cast<size_t>(d.j)];
    const Vec3& rk = pos[static_cast<size_t>(d.k)];
    const Vec3& rl = pos[static_cast<size_t>(d.l)];
    const Vec3 b1 = box.min_image(rj, ri);
    const Vec3 b2 = box.min_image(rk, rj);
    const Vec3 b3 = box.min_image(rl, rk);
    const Vec3 n1 = cross(b1, b2);
    const Vec3 n2 = cross(b2, b3);
    const double n1sq = norm2(n1);
    const double n2sq = norm2(n2);
    const double lb2 = norm(b2);
    if (n1sq < 1e-12 || n2sq < 1e-12 || lb2 < 1e-12) continue;  // collinear

    const double phi =
        std::atan2(dot(cross(n1, n2), b2) / lb2, dot(n1, n2));
    energy.dihedral += d.k_phi * (1.0 + std::cos(d.n * phi - d.phase));
    const double de_dphi = -d.k_phi * d.n * std::sin(d.n * phi - d.phase);

    // Blondel–Karplus gradient of the dihedral angle.
    const Vec3 dphi_dri = -(lb2 / n1sq) * n1;
    const Vec3 dphi_drl = (lb2 / n2sq) * n2;
    const double s12 = dot(b1, b2) / (lb2 * lb2);
    const double s32 = dot(b3, b2) / (lb2 * lb2);
    const Vec3 dphi_drj = -(1.0 + s12) * dphi_dri + s32 * dphi_drl;
    const Vec3 dphi_drk = s12 * dphi_dri - (1.0 + s32) * dphi_drl;

    const Vec3 f_i = -de_dphi * dphi_dri;
    const Vec3 f_k = -de_dphi * dphi_drk;
    const Vec3 f_l = -de_dphi * dphi_drl;
    forces[static_cast<size_t>(d.i)] += f_i;
    forces[static_cast<size_t>(d.j)] -= de_dphi * dphi_drj;
    forces[static_cast<size_t>(d.k)] += f_k;
    forces[static_cast<size_t>(d.l)] += f_l;
    // Virial with atom j as origin: r_i - r_j = -b1, r_k - r_j = b2,
    // r_l - r_j = b2 + b3.
    energy.virial += dot(-b1, f_i) + dot(b2, f_k) + dot(b2 + b3, f_l);
  }
}

void compute_pairs14(const Box& box, const Topology& top,
                     std::span<const Vec3> pos, std::span<Vec3> forces,
                     EnergyReport& energy) {
  const ForceField& ff = top.forcefield();
  const double lj_scale = ff.lj14_scale();
  const double elec_scale = ff.elec14_scale();
  for (const auto& p : top.pairs14()) {
    const Vec3 d = box.min_image(pos[static_cast<size_t>(p.i)],
                                 pos[static_cast<size_t>(p.j)]);
    const double r2 = norm2(d);
    const double r = std::sqrt(r2);
    const LjPair lj = ff.lj(top.type(p.i), top.type(p.j));

    // LJ: E = 4 eps [(s/r)^12 - (s/r)^6].
    const double sr2 = lj.sigma * lj.sigma / r2;
    const double sr6 = sr2 * sr2 * sr2;
    const double e_lj = 4.0 * lj.eps * (sr6 * sr6 - sr6);
    // -dE/dr * (1/r): force prefactor on displacement vector.
    const double f_lj = 24.0 * lj.eps * (2.0 * sr6 * sr6 - sr6) / r2;

    // Plain Coulomb for the scaled 1-4 term.
    const double qq = units::kCoulomb * top.charge(p.i) * top.charge(p.j);
    const double e_c = qq / r;
    const double f_c = qq / (r2 * r);

    energy.pair14 += lj_scale * e_lj + elec_scale * e_c;
    const Vec3 f = (lj_scale * f_lj + elec_scale * f_c) * d;
    forces[static_cast<size_t>(p.i)] += f;
    forces[static_cast<size_t>(p.j)] -= f;
    energy.virial += dot(d, f);
  }
}

void compute_restraints(const Box& box, const Topology& top,
                        std::span<const Vec3> pos, std::span<Vec3> forces,
                        EnergyReport& energy) {
  for (const auto& r : top.position_restraints()) {
    const Vec3 d = pos[static_cast<size_t>(r.atom)] - r.target;
    energy.restraint += r.k * norm2(d);
    forces[static_cast<size_t>(r.atom)] -= 2.0 * r.k * d;
    // External field: no internal virial contribution.
  }
  for (const auto& r : top.distance_restraints()) {
    const Vec3 d = box.min_image(pos[static_cast<size_t>(r.i)],
                                 pos[static_cast<size_t>(r.j)]);
    const double dist = norm(d);
    const double dr = dist - r.r0;
    energy.restraint += r.k * dr * dr;
    const Vec3 f = (-2.0 * r.k * dr / dist) * d;
    forces[static_cast<size_t>(r.i)] += f;
    forces[static_cast<size_t>(r.j)] -= f;
    energy.virial += dot(d, f);
  }
}

void compute_all_bonded(const Box& box, const Topology& top,
                        std::span<const Vec3> pos, std::span<Vec3> forces,
                        EnergyReport& energy) {
  compute_bonds(box, top, pos, forces, energy);
  compute_angles(box, top, pos, forces, energy);
  compute_dihedrals(box, top, pos, forces, energy);
  compute_pairs14(box, top, pos, forces, energy);
  compute_restraints(box, top, pos, forces, energy);
}

}  // namespace anton::md
