// Instantaneous pressure from the Clausius virial.
//
//   P = (2 KE + W) / (3 V),   W = Σ r_ij · F_ij
//
// Every force kernel accumulates its virial contribution into
// EnergyReport::virial; reciprocal-space solvers use the analytic
// k-space virial.  Constraint forces are not included (see params.h).
#pragma once

#include "chem/system.h"
#include "md/params.h"

namespace anton::md {

// 1 kcal/mol/Å³ expressed in bar.
inline constexpr double kPressureBar = 69476.95;

// Pressure in kcal/mol/Å³; multiply by kPressureBar for bar.
inline double instantaneous_pressure(const System& system,
                                     const EnergyReport& energy) {
  const double ke = system.kinetic_energy();
  return (2.0 * ke + energy.virial) / (3.0 * system.box().volume());
}

inline double instantaneous_pressure_bar(const System& system,
                                         const EnergyReport& energy) {
  return instantaneous_pressure(system, energy) * kPressureBar;
}

}  // namespace anton::md
