#include "md/constraints.h"

#include <cmath>

#include "common/error.h"

namespace anton::md {

ShakeStats shake(const Box& box, const Topology& top,
                 std::span<const Vec3> ref, std::span<Vec3> pos,
                 std::span<Vec3> vel, double dt, double tol, int max_iter) {
  const auto constraints = top.constraints();
  const auto mass = top.masses();
  ShakeStats stats;
  if (constraints.empty()) {
    stats.converged = true;
    return stats;
  }
  const bool fix_vel = !vel.empty() && dt > 0;

  for (int iter = 0; iter < max_iter; ++iter) {
    double max_viol = 0.0;
    for (const auto& c : constraints) {
      const size_t i = static_cast<size_t>(c.i), j = static_cast<size_t>(c.j);
      const Vec3 p = box.min_image(pos[i], pos[j]);
      const double d2 = c.length * c.length;
      const double diff = norm2(p) - d2;
      const double viol = std::abs(diff) / d2;
      max_viol = std::max(max_viol, viol);
      if (viol <= tol) continue;

      // Correction along the *reference* bond direction (standard SHAKE).
      const Vec3 r = box.min_image(ref[i], ref[j]);
      const double inv_mi = 1.0 / mass[i];
      const double inv_mj = 1.0 / mass[j];
      const double denom = 2.0 * (inv_mi + inv_mj) * dot(p, r);
      if (std::abs(denom) < 1e-12) continue;  // pathological; skip this pass
      const double g = diff / denom;
      const Vec3 dp_i = (-g * inv_mi) * r;
      const Vec3 dp_j = (g * inv_mj) * r;
      pos[i] += dp_i;
      pos[j] += dp_j;
      if (fix_vel) {
        vel[i] += dp_i / dt;
        vel[j] += dp_j / dt;
      }
    }
    stats.iterations = iter + 1;
    stats.max_violation = max_viol;
    if (max_viol <= tol) {
      stats.converged = true;
      return stats;
    }
  }
  return stats;
}

ShakeStats rattle(const Box& box, const Topology& top,
                  std::span<const Vec3> pos, std::span<Vec3> vel, double tol,
                  int max_iter) {
  const auto constraints = top.constraints();
  const auto mass = top.masses();
  ShakeStats stats;
  if (constraints.empty()) {
    stats.converged = true;
    return stats;
  }

  for (int iter = 0; iter < max_iter; ++iter) {
    double max_viol = 0.0;
    for (const auto& c : constraints) {
      const size_t i = static_cast<size_t>(c.i), j = static_cast<size_t>(c.j);
      const Vec3 r = box.min_image(pos[i], pos[j]);
      const Vec3 v = vel[i] - vel[j];
      const double d2 = c.length * c.length;
      const double rv = dot(r, v);
      // Relative measure: bond-length rate over (length/unit time).
      const double viol = std::abs(rv) / d2;
      max_viol = std::max(max_viol, viol);
      if (viol <= tol) continue;

      const double inv_mi = 1.0 / mass[i];
      const double inv_mj = 1.0 / mass[j];
      const double k = rv / ((inv_mi + inv_mj) * d2);
      vel[i] -= (k * inv_mi) * r;
      vel[j] += (k * inv_mj) * r;
    }
    stats.iterations = iter + 1;
    stats.max_violation = max_viol;
    if (max_viol <= tol) {
      stats.converged = true;
      return stats;
    }
  }
  return stats;
}

double max_constraint_violation(const Box& box, const Topology& top,
                                std::span<const Vec3> pos) {
  double max_viol = 0.0;
  for (const auto& c : top.constraints()) {
    const Vec3 p = box.min_image(pos[static_cast<size_t>(c.i)],
                                 pos[static_cast<size_t>(c.j)]);
    const double d2 = c.length * c.length;
    max_viol = std::max(max_viol, std::abs(norm2(p) - d2) / d2);
  }
  return max_viol;
}

}  // namespace anton::md
