// Persistent per-ForceCompute scratch and parameter caches for the
// short-range pipeline.
//
// Anton 2 keeps its pairwise point interaction pipelines saturated because
// nothing on the hot path touches a memory allocator; the commodity baseline
// mirrors that by hoisting every per-step buffer and every derived pair
// parameter into this workspace, sized once at construction:
//
//   - per-thread force accumulation buffers (kept zeroed between uses by the
//     zero-restoring reduction pass),
//   - per-thread partial-energy slots and pair-balanced chunk boundaries,
//   - the compute_all long-range force scratch,
//   - a dense premixed Lennard-Jones type-pair table (Lorentz–Berthelot
//     applied once, with the cutoff energy shift folded in),
//   - the Coulomb-prescaled charge array,
//   - optional cubic-Hermite tables for the erfc screened-Coulomb kernel.
#pragma once

#include <span>
#include <vector>

#include "chem/topology.h"
#include "common/fixed_point.h"
#include "common/table.h"
#include "common/vec3.h"

namespace anton::md {

// Per-thread partial sums from the pair and exclusion kernels.
struct PairEnergyPartial {
  double lj = 0;
  double coul = 0;
  double excl = 0;
  double virial = 0;
};

// Fixed-point per-thread partials for the deterministic accumulation mode:
// each pair contribution is quantized once, so the cross-thread sum is
// exactly associative and the result independent of thread count.
struct PairEnergyPartialFixed {
  Fixed<32> lj, coul, excl, virial;

  PairEnergyPartialFixed& operator+=(const PairEnergyPartialFixed& o) {
    lj += o.lj;
    coul += o.coul;
    excl += o.excl;
    virial += o.virial;
    return *this;
  }
};

// Premixed LJ parameters for one type pair. e_shift is the pair energy at
// the cutoff (subtracted when shift_at_cutoff is on; zero otherwise).  The
// struct is padded to 4 doubles so the vectorized pair kernel can fetch a
// whole record per lane with simd::load_fields4 (contiguous loads + in-
// register transpose) instead of three hardware gathers.
struct LjMixed {
  double eps = 0;
  double sigma2 = 0;
  double e_shift = 0;
  double pad = 0;
};

// One interleaved Hermite node of the fused screened-Coulomb table: energy
// value/derivative and force-factor value/derivative at the same abscissa.
// Interleaving lets the pair kernel fetch both interpolants with a single
// index computation and one shared Hermite basis.
struct CoulNode {
  double ev, ed, fv, fd;
};

// Non-owning view of the fused table, sized for register-resident use in the
// inner pair loop.  Node values are bitwise identical to the standalone
// CubicTable pair (coul_e/coul_f), so the accuracy bound measured there
// applies to this view too.
struct CoulTableView {
  const CoulNode* nodes = nullptr;
  double x0 = 0, h = 1, inv_h = 1;
  int n = 0;
};

class ForceWorkspace {
 public:
  // Builds the per-system caches (LJ table, scaled charges, erfc tables).
  // Idempotent for identical (topology size, alpha, cutoff, shift, tabulate)
  // inputs, so callers may invoke it on every evaluation.
  //
  // When tabulate_erfc is set (and alpha > 0), the erfc energy/force tables
  // are refined by node doubling until their measured max relative error on
  // interval midpoints is <= table_target_err (the accuracy bound).
  void build_cache(const Topology& top, double alpha, double cutoff,
                   bool shift_at_cutoff, bool tabulate_erfc,
                   double table_target_err = 1e-9);

  // Sizes the per-thread buffers; thread force buffers are zeroed whenever
  // their geometry changes and are otherwise kept zeroed by the reduction.
  void ensure_threads(unsigned nthreads, size_t n_atoms);

  // Restages positions (plus each atom's unscaled charge) into one
  // interleaved [x y z q] record per atom for the vectorized pair kernel:
  // a neighbor's displacement inputs and charge arrive with one
  // simd::load_fields4 record load instead of four hardware gathers.  The
  // buffer lives here (not per call) so the steady-state evaluation stays
  // allocation-free; only a geometry change resizes it.
  void stage_positions(std::span<const Vec3> pos,
                       std::span<const double> charges);
  const double* soa_xyzq() const { return soa_xyzq_.data(); }

  bool cache_ready() const { return cache_ready_; }
  int num_types() const { return ntypes_; }
  const LjMixed& lj(int ti, int tj) const {
    return lj_[static_cast<size_t>(ti) * static_cast<size_t>(ntypes_) +
               static_cast<size_t>(tj)];
  }
  // True when every pair row (ti, *) has eps == 0 (e.g. water hydrogens):
  // the pair kernel skips the whole LJ evaluation for such i-rows, whose
  // lanes would contribute exact +0.0 anyway.
  bool lj_row_zero(int ti) const {
    return lj_row_zero_[static_cast<size_t>(ti)] != 0;
  }
  std::span<const double> scaled_charges() const { return q_scaled_; }
  double coul_shift() const { return coul_shift_; }

  bool tables_ready() const { return tables_ready_; }
  const CubicTable& coul_e() const { return coul_e_; }
  const CubicTable& coul_f() const { return coul_f_; }
  CoulTableView coul_ef() const {
    return {ef_nodes_.data(), table_r2_min_, ef_h_, ef_inv_h_,
            static_cast<int>(ef_nodes_.size())};
  }
  double table_r2_min() const { return table_r2_min_; }
  // Max relative error of the erfc tables measured at build time.
  double table_max_rel_err() const { return table_max_rel_err_; }

  unsigned num_threads() const {
    return static_cast<unsigned>(thread_f_.size());
  }
  std::span<Vec3> thread_force(unsigned t) { return thread_f_[t]; }
  PairEnergyPartial& partial(unsigned t) { return partials_[t]; }
  std::vector<size_t>& chunk_bounds() { return chunk_bounds_; }
  std::vector<Vec3>& f_long() { return f_long_; }

  // Fixed-point twins of the per-thread buffers, sized lazily by the
  // deterministic accumulation mode (and kept zeroed by its reduction).
  void ensure_fixed_threads(unsigned nthreads, size_t n_atoms);
  std::span<ForceFixed> thread_force_fixed(unsigned t) {
    return thread_fx_[t];
  }
  PairEnergyPartialFixed& partial_fixed(unsigned t) {
    return partials_fx_[t];
  }

 private:
  // Immutable per-system caches.
  std::vector<LjMixed> lj_;
  std::vector<char> lj_row_zero_;
  std::vector<double> q_scaled_;
  int ntypes_ = 0;
  double coul_shift_ = 0;
  double cache_alpha_ = -1, cache_cutoff_ = -1;
  bool cache_shift_ = false;
  bool cache_ready_ = false;

  CubicTable coul_e_, coul_f_;
  std::vector<CoulNode> ef_nodes_;
  double ef_h_ = 1, ef_inv_h_ = 1;
  double table_r2_min_ = 0;
  double table_max_rel_err_ = 0;
  bool tables_ready_ = false;

  // Steady-state scratch.
  std::vector<double> soa_xyzq_;
  std::vector<std::vector<Vec3>> thread_f_;
  std::vector<PairEnergyPartial> partials_;
  std::vector<std::vector<ForceFixed>> thread_fx_;
  std::vector<PairEnergyPartialFixed> partials_fx_;
  std::vector<size_t> chunk_bounds_;
  std::vector<Vec3> f_long_;
};

// Mesh-density accumulator for the deterministic GSE spread: 40 fractional
// bits give 9.1e-13 resolution with a ±2^23 range — mesh charge densities
// are O(|q|/vol_cell), far inside that range, and the quantization error is
// orders of magnitude below the mesh discretization error.
using MeshFixed = Fixed<40>;
// Accumulator for the deterministic k-space energy/virial reductions: 16
// fractional bits leave ±1.4e14 of range for the per-point virial terms
// (which scale with the Green's function times |ρ̂|²) at 1.5e-5 resolution.
using MeshEnergyFixed = Fixed<16>;

// Per-thread scratch for the GSE mesh solver.  The axis arrays are sized
// (2r+1) per axis and hold the separable Gaussian weights, displacements and
// pre-wrapped mesh indices for one atom at a time; the grids are the
// per-thread charge-density accumulators for the threaded spread.
struct GseThreadScratch {
  std::vector<double> wx, wy, wz;     // per-axis Gaussian weights
  std::vector<double> dxs, dys, dzs;  // per-axis displacements (gather)
  std::vector<int> ix, iy, iz;        // pre-wrapped mesh indices
  // Per-thread charge grid for the threaded spread (kept zeroed between
  // uses by the zero-restoring merge), plus its fixed-point twin for the
  // deterministic mode.
  std::vector<double> rho;
  std::vector<MeshFixed> rho_fx;
  // Partial sums for the k-space virial multiply and the energy dot
  // product, with deterministic twins.
  double e = 0, w = 0;
  MeshEnergyFixed e_fx, w_fx;
};

// Persistent scratch owned by GseMesh, mirroring ForceWorkspace for the
// long-range path: sized once, then reused so the steady-state long-range
// step performs no heap allocation.
class GseWorkspace {
 public:
  // Sizes the per-thread scratch; idempotent for identical geometry.
  // `threaded_grids` requests the per-thread double charge grids (threaded
  // non-deterministic spread); `fixed_grids` the fixed-point twins
  // (deterministic spread at any thread count).  Grids are zeroed when
  // (re)created here and kept zeroed by the zero-restoring merge.
  void ensure(unsigned nthreads, int sx, int sy, int sz, size_t mesh_points,
              bool threaded_grids, bool fixed_grids);

  unsigned num_threads() const {
    return static_cast<unsigned>(threads_.size());
  }
  GseThreadScratch& thread(unsigned t) { return threads_[t]; }

 private:
  std::vector<GseThreadScratch> threads_;
  size_t mesh_points_ = 0;
  int sx_ = 0, sy_ = 0, sz_ = 0;
  bool threaded_grids_ = false;
  bool fixed_grids_ = false;
};

}  // namespace anton::md
