#include "md/checkpoint.h"

#include <fstream>
#include <ostream>

#include "common/error.h"

namespace anton::md {

namespace {
constexpr uint64_t kMagic = 0x414E544F4E43504Bull;  // "ANTONCPK"
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  ANTON_CHECK_MSG(is.good(), "truncated checkpoint");
  return v;
}
}  // namespace

void save_checkpoint(std::ostream& os, const Checkpoint& cp) {
  ANTON_CHECK(cp.positions.size() == cp.velocities.size());
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, cp.step);
  write_pod(os, static_cast<uint64_t>(cp.positions.size()));
  for (const auto& p : cp.positions) write_pod(os, p);
  for (const auto& v : cp.velocities) write_pod(os, v);
  ANTON_CHECK_MSG(os.good(), "checkpoint write failed");
}

Checkpoint load_checkpoint(std::istream& is) {
  ANTON_CHECK_MSG(read_pod<uint64_t>(is) == kMagic,
                  "not an anton2sim checkpoint");
  const auto version = read_pod<uint32_t>(is);
  ANTON_CHECK_MSG(version == kVersion,
                  "unsupported checkpoint version " << version);
  Checkpoint cp;
  cp.step = read_pod<int64_t>(is);
  const auto n = read_pod<uint64_t>(is);
  ANTON_CHECK_MSG(n < (1ull << 32), "implausible checkpoint size");
  cp.positions.resize(n);
  cp.velocities.resize(n);
  for (auto& p : cp.positions) p = read_pod<Vec3>(is);
  for (auto& v : cp.velocities) v = read_pod<Vec3>(is);
  return cp;
}

void save_checkpoint_file(const std::string& path, const Checkpoint& cp) {
  std::ofstream os(path, std::ios::binary);
  ANTON_CHECK_MSG(os.is_open(), "cannot open '" << path << "' for writing");
  save_checkpoint(os, cp);
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ANTON_CHECK_MSG(is.is_open(), "cannot open '" << path << "'");
  return load_checkpoint(is);
}

Checkpoint capture(const System& system, int64_t step) {
  Checkpoint cp;
  cp.step = step;
  cp.positions.assign(system.positions().begin(), system.positions().end());
  cp.velocities.assign(system.velocities().begin(),
                       system.velocities().end());
  return cp;
}

void restore(System& system, const Checkpoint& cp) {
  ANTON_CHECK_MSG(static_cast<int>(cp.positions.size()) ==
                      system.num_atoms(),
                  "checkpoint atom count mismatch: "
                      << cp.positions.size() << " vs " << system.num_atoms());
  std::copy(cp.positions.begin(), cp.positions.end(),
            system.positions().begin());
  std::copy(cp.velocities.begin(), cp.velocities.end(),
            system.velocities().begin());
}

void append_xyz_frame(std::ostream& os, const System& system,
                      const std::string& comment) {
  const Topology& top = system.topology();
  os << top.num_atoms() << "\n" << comment << "\n";
  for (int i = 0; i < top.num_atoms(); ++i) {
    const auto& name = top.forcefield().type(top.type(i)).name;
    const Vec3 p = system.box().wrap(
        system.positions()[static_cast<size_t>(i)]);
    os << name.substr(0, 1) << " " << p.x << " " << p.y << " " << p.z
       << "\n";
  }
}

}  // namespace anton::md
