#include "md/minimize.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "md/constraints.h"
#include "md/forces.h"

namespace anton::md {

MinimizeResult minimize_energy(System& system, const MdParams& params,
                               int max_steps, double max_disp, double f_tol,
                               ThreadPool* pool) {
  ANTON_CHECK(max_steps >= 0 && max_disp > 0 && f_tol > 0);
  MinimizeResult result;

  // Use a cheap force setup: minimisation doesn't need k-space accuracy —
  // clashes are short-range phenomena.
  MdParams p = params;
  p.long_range = LongRangeMethod::kNone;
  ForceCompute force(system.topology_ptr(), system.box(), p, pool);

  const int n = system.num_atoms();
  std::vector<Vec3> f(static_cast<size_t>(n));
  std::vector<Vec3> ref(static_cast<size_t>(n));
  auto pos = system.positions();

  EnergyReport e = force.compute_short(pos, f);
  result.initial_energy = e.potential();
  double step_size = 0.2 * max_disp;
  double prev_energy = result.initial_energy;

  for (int iter = 0; iter < max_steps; ++iter) {
    double fmax = 0;
    for (const auto& fi : f) fmax = std::max(fmax, norm(fi));
    result.max_force = fmax;
    if (fmax < f_tol) break;

    // Move along the force; the most-stressed atom moves exactly step_size.
    std::copy(pos.begin(), pos.end(), ref.begin());
    const double scale = step_size / fmax;
    for (int i = 0; i < n; ++i) {
      pos[static_cast<size_t>(i)] += scale * f[static_cast<size_t>(i)];
    }
    shake(system.box(), system.topology(), ref, pos, {}, 0.0,
          params.shake_tol, params.shake_max_iter);

    e = force.compute_short(pos, f);
    const double energy = e.potential();
    if (energy < prev_energy) {
      step_size = std::min(step_size * 1.2, max_disp);
      prev_energy = energy;
    } else {
      // Backtrack: undo and shrink.
      std::copy(ref.begin(), ref.end(), pos.begin());
      e = force.compute_short(pos, f);
      step_size *= 0.5;
      if (step_size < 1e-6) break;
    }
    result.steps = iter + 1;
  }
  result.final_energy = prev_energy;
  return result;
}

}  // namespace anton::md
