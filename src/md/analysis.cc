#include "md/analysis.h"

#include <cmath>

#include "common/error.h"
#include "geom/cells.h"

namespace anton::md {

RdfAccumulator::RdfAccumulator(double r_max, int bins)
    : r_max_(r_max), bins_(bins), counts_(static_cast<size_t>(bins), 0.0) {
  ANTON_CHECK(r_max > 0 && bins > 0);
}

void RdfAccumulator::add_frame(const System& system,
                               std::span<const int> group_a,
                               std::span<const int> group_b) {
  const Box& box = system.box();
  ANTON_CHECK_MSG(r_max_ <= box.max_cutoff(),
                  "RDF range exceeds the minimum-image limit");
  const auto pos = system.positions();
  const bool self = group_a.data() == group_b.data() &&
                    group_a.size() == group_b.size();
  const double r_max2 = r_max_ * r_max_;

  // Cell-accelerated pair search over group_b positions.
  std::vector<Vec3> b_pos;
  b_pos.reserve(group_b.size());
  for (int j : group_b) b_pos.push_back(pos[static_cast<size_t>(j)]);
  CellGrid grid(box, r_max_);
  const bool tiny = grid.nx() < 3 || grid.ny() < 3 || grid.nz() < 3;

  auto bin_pair = [&](double r2) {
    const double r = std::sqrt(r2);
    int b = static_cast<int>(r / r_max_ * bins_);
    if (b >= bins_) b = bins_ - 1;
    counts_[static_cast<size_t>(b)] += self ? 2.0 : 1.0;
  };

  if (tiny) {
    for (size_t ia = 0; ia < group_a.size(); ++ia) {
      const Vec3 pa = pos[static_cast<size_t>(group_a[ia])];
      const size_t jb_start = self ? ia + 1 : 0;
      for (size_t jb = jb_start; jb < group_b.size(); ++jb) {
        if (!self || group_a[ia] != group_b[jb]) {
          const double r2 = box.distance2(pa, b_pos[jb]);
          if (r2 < r_max2 && r2 > 1e-12) bin_pair(r2);
        }
      }
    }
  } else {
    grid.bin(b_pos);
    for (size_t ia = 0; ia < group_a.size(); ++ia) {
      const int i_global = group_a[ia];
      const Vec3 pa = pos[static_cast<size_t>(i_global)];
      const int c = grid.cell_of(pa);
      for (int nc : grid.stencil(c)) {
        for (int jb : grid.cell_atoms(nc)) {
          if (self) {
            // Count each unordered pair once (then weight 2 in bin_pair).
            if (group_b[static_cast<size_t>(jb)] <= i_global) continue;
          }
          const double r2 = box.distance2(pa, b_pos[static_cast<size_t>(jb)]);
          if (r2 < r_max2 && r2 > 1e-12) bin_pair(r2);
        }
      }
    }
  }

  const double rho_b =
      static_cast<double>(group_b.size()) / box.volume();
  pair_norm_ += static_cast<double>(group_a.size()) * rho_b;
  ++frames_;
}

std::vector<double> RdfAccumulator::g_of_r() const {
  ANTON_CHECK_MSG(frames_ > 0, "no frames accumulated");
  std::vector<double> g(static_cast<size_t>(bins_));
  const double dr = r_max_ / bins_;
  for (int b = 0; b < bins_; ++b) {
    const double r_lo = b * dr, r_hi = (b + 1) * dr;
    const double shell =
        4.0 / 3.0 * M_PI * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = pair_norm_ * shell;  // expected count, all frames
    g[static_cast<size_t>(b)] =
        ideal > 0 ? counts_[static_cast<size_t>(b)] / ideal : 0.0;
  }
  return g;
}

std::vector<double> RdfAccumulator::r_centers() const {
  std::vector<double> r(static_cast<size_t>(bins_));
  const double dr = r_max_ / bins_;
  for (int b = 0; b < bins_; ++b) {
    r[static_cast<size_t>(b)] = (b + 0.5) * dr;
  }
  return r;
}

double RdfAccumulator::first_peak_r(double r_min_search) const {
  const auto g = g_of_r();
  const auto r = r_centers();
  double best_r = 0, best_g = -1;
  for (size_t b = 0; b + 1 < g.size(); ++b) {
    if (r[b] < r_min_search) continue;
    if (g[b] > best_g) {
      best_g = g[b];
      best_r = r[b];
    } else if (best_g > 1.0 && g[b] < 0.8 * best_g) {
      break;  // well past the first peak
    }
  }
  return best_r;
}

std::vector<int> atoms_of_type(const Topology& top, int type) {
  std::vector<int> out;
  for (int i = 0; i < top.num_atoms(); ++i) {
    if (top.type(i) == type) out.push_back(i);
  }
  return out;
}

double mean_squared_displacement(std::span<const Vec3> reference,
                                 std::span<const Vec3> current) {
  ANTON_CHECK(reference.size() == current.size() && !reference.empty());
  double acc = 0;
  for (size_t i = 0; i < reference.size(); ++i) {
    acc += norm2(current[i] - reference[i]);
  }
  return acc / static_cast<double>(reference.size());
}

}  // namespace anton::md
