// Verlet neighbour list with skin, built from a cell grid in O(N).
//
// Pairs are stored half (each unordered pair once, j in the list of the
// smaller partner is not guaranteed — we store by discovery order with
// i < j enforced).  Topological exclusions are filtered at build time, so
// force loops never branch on exclusion.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chem/topology.h"
#include "common/vec3.h"
#include "geom/box.h"

namespace anton {

class NeighborList {
 public:
  NeighborList(double cutoff, double skin);

  double cutoff() const { return cutoff_; }
  double skin() const { return skin_; }
  double list_radius() const { return cutoff_ + skin_; }

  // Rebuilds from scratch; remembers positions for displacement tracking.
  void build(const Box& box, std::span<const Vec3> positions,
             const Topology& top);

  // True once any atom has moved more than skin/2 since the last build.
  bool needs_rebuild(const Box& box, std::span<const Vec3> positions) const;

  // CSR access: neighbours j (all with j != i; each pair appears exactly
  // once, under the lower index).
  std::span<const int> neighbors_of(int i) const {
    const auto b = starts_[static_cast<size_t>(i)];
    const auto e = starts_[static_cast<size_t>(i) + 1];
    return {list_.data() + b, list_.data() + e};
  }
  int num_atoms() const { return static_cast<int>(starts_.size()) - 1; }
  int64_t num_pairs() const { return static_cast<int64_t>(list_.size()); }
  bool built() const { return !starts_.empty(); }

 private:
  double cutoff_;
  double skin_;
  std::vector<int> list_;
  std::vector<int64_t> starts_;
  std::vector<Vec3> ref_positions_;
};

}  // namespace anton
