// Verlet neighbour list with skin, built from a cell grid in O(N).
//
// Pairs are stored half (each unordered pair once, under the lower index,
// sorted per atom).  Topological exclusions are filtered at build time, so
// force loops never branch on exclusion.
//
// The build is parallelised over cells when a ThreadPool is supplied: each
// thread collects pairs into a persistent shard buffer, a counting pass
// merges the shards directly into the CSR arrays (disjoint slots, so the
// scatter is race-free), and a parallel per-atom sort makes the result
// identical to the serial build bit-for-bit.  All scratch persists across
// builds, so steady-state rebuilds do not allocate once capacities settle.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "chem/topology.h"
#include "common/threadpool.h"
#include "common/vec3.h"
#include "geom/box.h"

namespace anton {

class CellGrid;  // geom/cells.h; only the .cc needs the definition

class NeighborList {
 public:
  NeighborList(double cutoff, double skin);
  ~NeighborList();  // out of line: grid_ is incomplete here

  double cutoff() const { return cutoff_; }
  double skin() const { return skin_; }
  double list_radius() const { return cutoff_ + skin_; }

  // Rebuilds from scratch; remembers positions for displacement tracking.
  // With a pool, collection/scatter/sort run threaded; the resulting CSR is
  // identical to the serial build.
  void build(const Box& box, std::span<const Vec3> positions,
             const Topology& top, ThreadPool* pool = nullptr);

  // True once any atom has moved more than skin/2 since the last build.
  // With a pool the scan is parallelised and early-exits once any thread
  // finds a displaced atom.
  bool needs_rebuild(const Box& box, std::span<const Vec3> positions,
                     ThreadPool* pool = nullptr) const;

  // CSR access: neighbours j (all with j != i; each pair appears exactly
  // once, under the lower index, sorted ascending).
  std::span<const int> neighbors_of(int i) const {
    const auto b = starts_[static_cast<size_t>(i)];
    const auto e = starts_[static_cast<size_t>(i) + 1];
    return {list_.data() + b, list_.data() + e};
  }
  // Raw CSR offsets (size num_atoms()+1); consumers use these to balance
  // work by cumulative pair count.
  std::span<const int64_t> starts() const { return starts_; }
  int num_atoms() const { return static_cast<int>(starts_.size()) - 1; }
  int64_t num_pairs() const { return static_cast<int64_t>(list_.size()); }
  bool built() const { return !starts_.empty(); }

  // Always-on CSR well-formedness validator: starts_ is monotone and spans
  // list_ exactly; every neighbour j of atom i satisfies i < j < num_atoms()
  // (half list under the lower index) and each row is strictly ascending.
  // Throws anton::Error on violation.  build() runs this automatically when
  // ANTON_ENABLE_INVARIANTS is on (debug and sanitizer builds).
  void validate() const;

 private:
  // One per build thread: pairs found plus per-atom counts (reused as
  // scatter cursors by the merge pass).
  struct BuildShard {
    std::vector<int> pair_i;
    std::vector<int> pair_j;
    std::vector<int> counts;
  };

  void collect_cells(const CellGrid& grid, const Topology& top, double rl2,
                     int cell_begin, int cell_end, BuildShard& shard) const;
  void merge_shards(int n, unsigned nshards, ThreadPool* pool);

  double cutoff_;
  double skin_;
  std::vector<int> list_;
  std::vector<int64_t> starts_;
  std::vector<Vec3> ref_positions_;
  // Build scratch, persistent across builds.  The cell grid keeps its
  // binning storage, so steady-state rebuilds touch no allocator.
  std::unique_ptr<CellGrid> grid_;
  std::vector<Vec3> wrapped_;
  std::vector<BuildShard> shards_;
  std::vector<int> shard_cell_begin_;
};

}  // namespace anton
