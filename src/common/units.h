// Unit system and physical constants.
//
// The library uses the AKMA-style unit system common in biomolecular MD:
//   length  : angstrom (Å)
//   energy  : kcal/mol
//   mass    : atomic mass unit (g/mol)
//   charge  : elementary charge (e)
//   time    : internally the "natural" unit sqrt(amu·Å²/(kcal/mol)) ≈ 48.89 fs;
//             all public APIs take femtoseconds and convert.
//
// With these units Newton's law reads a = F/m with no extra factor once time
// is expressed in natural units.
#pragma once

namespace anton::units {

// Boltzmann constant, kcal/(mol·K).
inline constexpr double kBoltzmann = 0.001987204259;

// Coulomb constant: E = kCoulomb * q1*q2 / r, with q in e, r in Å,
// E in kcal/mol.
inline constexpr double kCoulomb = 332.063713;

// One natural time unit expressed in femtoseconds:
// sqrt(1 g/mol · Å² / (kcal/mol)) = 48.88821 fs.
inline constexpr double kTimeUnitFs = 48.88821;

// Femtoseconds -> natural time units.
inline constexpr double fs_to_internal(double fs) { return fs / kTimeUnitFs; }
inline constexpr double internal_to_fs(double t) { return t * kTimeUnitFs; }

// Seconds in one day — used when converting steps/s to simulated μs/day.
inline constexpr double kSecondsPerDay = 86400.0;

// Convenience: simulated microseconds of physical time per wall-clock day,
// given the MD timestep (fs) and the wall-clock time of one step (seconds).
inline constexpr double us_per_day(double dt_fs, double wall_seconds_per_step) {
  // dt_fs femtoseconds of physical time every wall_seconds_per_step seconds.
  const double fs_per_day = dt_fs * (kSecondsPerDay / wall_seconds_per_step);
  return fs_per_day * 1e-9;  // fs -> μs
}

// Density of liquid water at 300 K, atoms (3 per molecule) per Å^3.
// 0.997 g/cm^3 / 18.015 g/mol * 6.022e23 / 1e24 Å^3/cm^3 * 3.
inline constexpr double kWaterAtomsPerA3 = 0.10002;

}  // namespace anton::units
