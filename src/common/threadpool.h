// Minimal blocking thread pool with a parallel_for helper.
//
// The functional MD engine (the commodity baseline) uses this to exploit
// host cores; the machine simulator itself is single-threaded and
// deterministic.  Static chunking keeps the force decomposition reproducible
// for a fixed thread count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace anton {

class ThreadPool {
 public:
  // n_threads == 0 means hardware_concurrency().
  explicit ThreadPool(unsigned n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size() + 1); }

  // Runs fn(begin, end) over [0, n) split into contiguous chunks, one per
  // thread (including the calling thread). Blocks until all chunks finish.
  void parallel_for(size_t n, const std::function<void(size_t, size_t)>& fn);

  // Runs fn(thread_index) on every thread; useful for thread-local reduction
  // buffers.
  void for_each_thread(const std::function<void(unsigned)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void run_batch(std::vector<std::function<void()>> tasks);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>> queue_;
  size_t outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace anton
