// Minimal blocking thread pool with a parallel_for helper.
//
// The functional MD engine (the commodity baseline) uses this to exploit
// host cores; the machine simulator itself is single-threaded and
// deterministic.  Static chunking keeps the force decomposition reproducible
// for a fixed thread count.
//
// Dispatch is allocation-free: work is handed to the workers as a plain
// (function pointer, context pointer) pair — no std::function, no per-call
// task vector — so steady-state force evaluation performs zero heap
// allocation (see DESIGN.md, "Commodity-baseline performance model").
//
// Memory model (audited under TSan; see tests/test_threadpool.cc):
//   - The (fn_, ctx_, generation_) trampoline is published under mu_ and
//     read by workers under mu_, so workers always observe a coherent
//     (generation, fn, ctx) triple.
//   - Completion is counted by the atomic remaining_: workers decrement with
//     acq_rel after running their chunk, which makes every write performed
//     inside the chunk happen-before the dispatcher's acquire load that
//     observes remaining_ == 0.  The final decrementer takes mu_ before
//     notifying so the wakeup cannot be lost.
//   - Concurrent dispatchers are serialized by dispatch_mu_: parallel_for
//     may be called from multiple threads, but nested dispatch from inside a
//     worker chunk deadlocks by design (documented non-reentrancy).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace anton {

class ThreadPool {
 public:
  // n_threads == 0 means hardware_concurrency().
  explicit ThreadPool(unsigned n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size() + 1); }

  // Runs fn(begin, end) over [0, n) split into contiguous chunks, one per
  // thread (including the calling thread). Blocks until all chunks finish.
  template <class F>
  void parallel_for(size_t n, F&& fn) {
    ANTON_HOT_NOALLOC();
    if (n == 0) return;
    const size_t threads = std::min<size_t>(size(), n);
    if (threads <= 1) {
      fn(size_t{0}, n);
      return;
    }
    const size_t chunk = (n + threads - 1) / threads;
    for_each_thread([&fn, n, chunk](unsigned t) {
      const size_t begin = std::min(n, static_cast<size_t>(t) * chunk);
      const size_t end = std::min(n, begin + chunk);
      if (begin < end) fn(begin, end);
    });
  }

  // Runs fn(thread_index) on every thread (the caller runs index 0); useful
  // for thread-local reduction buffers.
  template <class F>
  void for_each_thread(F&& fn) {
    ANTON_HOT_NOALLOC();
    using Fn = std::remove_reference_t<F>;
    dispatch([](void* ctx, unsigned t) { (*static_cast<Fn*>(ctx))(t); },
             const_cast<void*>(
                 static_cast<const void*>(std::addressof(fn))));
  }

 private:
  // Runs fn(ctx, t) on every thread index t in [0, size()); the calling
  // thread executes t == 0.  Safe to call concurrently from multiple
  // threads (calls serialize); not reentrant (no nested dispatch).
  void dispatch(void (*fn)(void*, unsigned), void* ctx);
  void worker_loop(unsigned index);

  std::vector<std::thread> workers_;
  std::mutex dispatch_mu_;  // serializes concurrent dispatchers
  std::mutex mu_;           // guards the trampoline + wakeup/done cvs
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  void (*fn_)(void*, unsigned) = nullptr;
  void* ctx_ = nullptr;
  uint64_t generation_ = 0;
  std::atomic<unsigned> remaining_{0};
  bool stop_ = false;
};

}  // namespace anton
