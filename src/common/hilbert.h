// 3D Hilbert curve indexing.
//
// Like Morton order (morton.h) but with strictly contiguous traversal: every
// consecutive pair of Hilbert indices is face-adjacent in space, which gives
// measurably better locality for streamed force pipelines.  Implementation:
// iterative bit-serial transpose algorithm (Skilling, 2004) for b bits per
// axis.
#pragma once

#include <array>
#include <cstdint>

#include "common/error.h"

namespace anton {

// Encodes (x, y, z), each in [0, 2^bits), into a Hilbert index in
// [0, 2^(3*bits)).
uint64_t hilbert_encode(uint32_t x, uint32_t y, uint32_t z, int bits);

struct HilbertCoords {
  uint32_t x, y, z;
};

// Inverse of hilbert_encode.
HilbertCoords hilbert_decode(uint64_t index, int bits);

}  // namespace anton
