// Portable SIMD abstraction for the hot MD kernels.
//
// Anton 2's pairwise point interaction pipelines and geometry cores are wide
// vector machines; the commodity baseline mirrors that with a small,
// fixed-width vector wrapper.  Every kernel is written once against this
// header; the backend is chosen at configure time (ANTON_SIMD=avx2|scalar,
// auto-detected by default) and raw intrinsics never leak outside this file
// (enforced by the anton-lint `raw-intrinsics` rule).
//
// Lane-model contract — the foundation of the cross-backend bitwise parity
// the deterministic mode certifies:
//
//   * Both backends expose the SAME width (4 double lanes, 8 float lanes),
//     so the chunking, masking and lane order of a kernel are identical no
//     matter which backend is compiled in.
//   * Every wrapper op performs the same correctly-rounded IEEE-754
//     operation per lane in both backends.  Where an AVX2 instruction has
//     non-obvious scalar semantics the scalar backend reproduces those
//     semantics exactly:
//       - min/max follow the Intel definition `a OP b ? a : b` (so a NaN in
//         `a` selects `b`, unlike std::min/std::max);
//       - round_nearest() is round-half-to-even in the default FP
//         environment (std::nearbyint <-> _mm256_round_pd NEAREST_INT);
//       - truncate() matches _mm256_cvttpd_epi32 / static_cast<int> for
//         in-range values;
//       - fma() is a single correctly-rounded fused multiply-add (std::fma
//         <-> vfmadd).
//   * Builds keep FP contraction off globally (-ffp-contract=off in the top
//     CMakeLists), so the compiler cannot fuse the scalar backend's mul+add
//     chains into fmas and break parity with the explicit vector ops.
//   * reduce_ordered() folds lanes strictly left to right
//     (((l0+l1)+l2)+l3), giving a single fixed summation order that is
//     independent of backend and thread count.
//
// Tail policy: kernels process full W-lane chunks and handle the ragged tail
// with mask_first_n(); inactive lanes are blended to exact 0.0 before any
// accumulation and skipped in scatter loops, so they never contribute and
// never read or write out-of-range memory (gather indices for inactive lanes
// must still be in-range — duplicate a valid index into the padding).
//
// Adding a backend (e.g. NEON or AVX-512): provide the same types with the
// same lane counts and per-lane semantics under a new preprocessor branch,
// then extend tests/test_simd.cc's reference checks — the unit tests compare
// every op against the scalar reference, so a semantics mismatch fails
// immediately.
#pragma once

#include <cmath>
#include <cstdint>

#if defined(ANTON_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace anton::simd {

inline constexpr int kLanesD = 4;  // double lanes per VecD
inline constexpr int kLanesF = 8;  // float lanes per VecF

#if defined(ANTON_SIMD_AVX2)
inline constexpr bool kAvx2 = true;
inline constexpr const char* kBackendName = "avx2";
#else
inline constexpr bool kAvx2 = false;
inline constexpr const char* kBackendName = "scalar";
#endif

#if defined(ANTON_SIMD_AVX2)

// ---------------------------------------------------------------------------
// AVX2 + FMA backend
// ---------------------------------------------------------------------------

// Comparison-result mask over 4 double lanes (all-ones / all-zeros bits).
struct MaskD {
  __m256d m;

  static MaskD none() { return {_mm256_setzero_pd()}; }
  // True in the first n lanes, false in the rest (n clamped to [0, 4]).
  static MaskD first_n(int n) {
    alignas(32) double lanes[kLanesD];
    for (int l = 0; l < kLanesD; ++l) {
      lanes[l] = l < n ? -1.0 : 0.0;  // sign bit set where active
    }
    const __m256d v = _mm256_load_pd(lanes);
    return {_mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_LT_OQ)};
  }

  bool any() const { return _mm256_movemask_pd(m) != 0; }
  bool all() const { return _mm256_movemask_pd(m) == 0xF; }
  bool lane(int i) const { return (_mm256_movemask_pd(m) >> i) & 1; }
  // Bitmask of active lanes (bit l = lane l).
  int bits() const { return _mm256_movemask_pd(m); }

  friend MaskD operator&(MaskD a, MaskD b) {
    return {_mm256_and_pd(a.m, b.m)};
  }
  friend MaskD operator|(MaskD a, MaskD b) {
    return {_mm256_or_pd(a.m, b.m)};
  }
  friend MaskD andnot(MaskD a, MaskD b) {  // a & ~b
    return {_mm256_andnot_pd(b.m, a.m)};
  }
};

// 4 int32 lanes (gather indices and table offsets).
struct VecI {
  __m128i v;

  static VecI broadcast(int x) { return {_mm_set1_epi32(x)}; }
  static VecI loadu(const int* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void storeu(int* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  int lane(int i) const {
    alignas(16) int lanes[kLanesD];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), v);
    return lanes[i];
  }
  // lanes[l] = base[idx.lane(l)]; every index must be in-range.
  static VecI gather(const int* base, VecI idx) {
    return {_mm_i32gather_epi32(base, idx.v, 4)};
  }

  friend VecI operator+(VecI a, VecI b) { return {_mm_add_epi32(a.v, b.v)}; }
  friend VecI operator*(VecI a, VecI b) {
    return {_mm_mullo_epi32(a.v, b.v)};
  }
  friend VecI min(VecI a, VecI b) { return {_mm_min_epi32(a.v, b.v)}; }
  friend VecI max(VecI a, VecI b) { return {_mm_max_epi32(a.v, b.v)}; }
};

// 4 double lanes.
struct VecD {
  __m256d v;

  static VecD zero() { return {_mm256_setzero_pd()}; }
  static VecD broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecD loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
  void storeu(double* p) const { _mm256_storeu_pd(p, v); }
  double lane(int i) const {
    alignas(32) double lanes[kLanesD];
    _mm256_store_pd(lanes, v);
    return lanes[i];
  }

  // lanes[l] = base[idx.lane(l)]; every index must be in-range.
  static VecD gather(const double* base, VecI idx) {
    return {_mm256_i32gather_pd(base, idx.v, 8)};
  }
  // Gather where m is set, exact 0.0 elsewhere.  Inactive lanes are not
  // dereferenced, but their indices must still be in-range for the masked
  // instruction's address computation.
  static VecD mask_gather(const double* base, VecI idx, MaskD m) {
    return {_mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, idx.v, m.m,
                                     8)};
  }

  friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a) {
    return {_mm256_sub_pd(_mm256_setzero_pd(), a.v)};
  }

  // a*b + c, single rounding per lane.
  friend VecD fma(VecD a, VecD b, VecD c) {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }
  friend VecD sqrt(VecD a) { return {_mm256_sqrt_pd(a.v)}; }
  // Intel semantics: a < b ? a : b (NaN in a selects b).
  friend VecD min(VecD a, VecD b) { return {_mm256_min_pd(a.v, b.v)}; }
  friend VecD max(VecD a, VecD b) { return {_mm256_max_pd(a.v, b.v)}; }
  // Round half to even (the default FP environment's nearbyint).
  friend VecD round_nearest(VecD a) {
    return {_mm256_round_pd(a.v,
                            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
  }

  friend MaskD cmp_lt(VecD a, VecD b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
  friend MaskD cmp_le(VecD a, VecD b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
  }
  friend MaskD cmp_gt(VecD a, VecD b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  friend MaskD cmp_ge(VecD a, VecD b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
  }
  friend MaskD cmp_eq(VecD a, VecD b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
  }
  friend MaskD cmp_ne(VecD a, VecD b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_NEQ_UQ)};
  }

  // m ? a : b, per lane.
  friend VecD blend(MaskD m, VecD a, VecD b) {
    return {_mm256_blendv_pd(b.v, a.v, m.m)};
  }

  // Strict left-to-right lane sum: ((l0 + l1) + l2) + l3.  The one
  // deterministic reduction order shared by every backend.
  double reduce_ordered() const {
    alignas(32) double lanes[kLanesD];
    _mm256_store_pd(lanes, v);
    return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  }

  // Truncate toward zero to int32 (matches static_cast<int> in range).
  friend VecI truncate(VecD a) { return {_mm256_cvttpd_epi32(a.v)}; }
  static VecD from_int(VecI a) { return {_mm256_cvtepi32_pd(a.v)}; }
};

// Best-effort prefetch hint into L1; purely advisory, never observable in
// results.  Kernels that compute gather/record indices ahead of use (e.g.
// the segmented pair kernel) issue these to hide the table-miss latency of
// a working set larger than L2.
inline void prefetch(const void* p) {
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
}

// Record load for tables of 4-double records: for each lane l, reads the 4
// consecutive doubles at base + idx.lane(l) and transposes them so that
// fk.lane(l) == base[idx.lane(l) + k].  Pure data movement — bitwise
// identical in both backends — but on AVX2 it replaces 4 hardware gathers
// (serialized, ~10+ cycles each) with 4 contiguous loads and an in-register
// 4x4 transpose, which is what makes the record-structured table lookups in
// the pair kernel profitable.  Every idx lane must leave idx+3 in-range.
inline void load_fields4(const double* base, VecI idx, VecD& f0, VecD& f1,
                         VecD& f2, VecD& f3) {
  alignas(16) int ib[kLanesD];
  idx.storeu(ib);
  const __m256d r0 = _mm256_loadu_pd(base + ib[0]);
  const __m256d r1 = _mm256_loadu_pd(base + ib[1]);
  const __m256d r2 = _mm256_loadu_pd(base + ib[2]);
  const __m256d r3 = _mm256_loadu_pd(base + ib[3]);
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);  // [r00 r10 | r02 r12]
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);  // [r01 r11 | r03 r13]
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  f0 = {_mm256_permute2f128_pd(t0, t2, 0x20)};
  f1 = {_mm256_permute2f128_pd(t1, t3, 0x20)};
  f2 = {_mm256_permute2f128_pd(t0, t2, 0x31)};
  f3 = {_mm256_permute2f128_pd(t1, t3, 0x31)};
}

// Complex multiply over two interleaved complex<double> lanes
// [re0, im0, re1, im1]: per pair (ar*br - ai*bi, ar*bi + ai*br), each
// component two products and one add/sub — bitwise what the naive scalar
// formula computes for finite values.
inline VecD cmul(VecD a, VecD b) {
  const __m256d br = _mm256_movedup_pd(b.v);                  // [br, br]
  const __m256d bi = _mm256_permute_pd(b.v, 0xF);             // [bi, bi]
  const __m256d a_sw = _mm256_permute_pd(a.v, 0x5);           // [ai, ar]
  // addsub(a*br, a_sw*bi): lane0 ar*br - ai*bi, lane1 ai*br + ar*bi.
  return {_mm256_addsub_pd(_mm256_mul_pd(a.v, br),
                           _mm256_mul_pd(a_sw, bi))};
}

// 8 float lanes.
struct MaskF {
  __m256 m;

  static MaskF first_n(int n) {
    alignas(32) float lanes[kLanesF];
    for (int l = 0; l < kLanesF; ++l) lanes[l] = l < n ? -1.0f : 0.0f;
    const __m256 v = _mm256_load_ps(lanes);
    return {_mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_LT_OQ)};
  }
  bool any() const { return _mm256_movemask_ps(m) != 0; }
  bool all() const { return _mm256_movemask_ps(m) == 0xFF; }
  bool lane(int i) const { return (_mm256_movemask_ps(m) >> i) & 1; }
  friend MaskF operator&(MaskF a, MaskF b) {
    return {_mm256_and_ps(a.m, b.m)};
  }
  friend MaskF operator|(MaskF a, MaskF b) {
    return {_mm256_or_ps(a.m, b.m)};
  }
};

struct VecF {
  __m256 v;

  static VecF zero() { return {_mm256_setzero_ps()}; }
  static VecF broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static VecF loadu(const float* p) { return {_mm256_loadu_ps(p)}; }
  void storeu(float* p) const { _mm256_storeu_ps(p, v); }
  float lane(int i) const {
    alignas(32) float lanes[kLanesF];
    _mm256_store_ps(lanes, v);
    return lanes[i];
  }

  friend VecF operator+(VecF a, VecF b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend VecF operator/(VecF a, VecF b) { return {_mm256_div_ps(a.v, b.v)}; }
  friend VecF fma(VecF a, VecF b, VecF c) {
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
  }
  friend VecF sqrt(VecF a) { return {_mm256_sqrt_ps(a.v)}; }
  friend VecF min(VecF a, VecF b) { return {_mm256_min_ps(a.v, b.v)}; }
  friend VecF max(VecF a, VecF b) { return {_mm256_max_ps(a.v, b.v)}; }
  friend MaskF cmp_lt(VecF a, VecF b) {
    return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)};
  }
  friend MaskF cmp_ge(VecF a, VecF b) {
    return {_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ)};
  }
  friend VecF blend(MaskF m, VecF a, VecF b) {
    return {_mm256_blendv_ps(b.v, a.v, m.m)};
  }
  float reduce_ordered() const {
    alignas(32) float lanes[kLanesF];
    _mm256_store_ps(lanes, v);
    float acc = lanes[0];
    for (int l = 1; l < kLanesF; ++l) acc += lanes[l];
    return acc;
  }
};

#else  // !ANTON_SIMD_AVX2

// ---------------------------------------------------------------------------
// Scalar fallback backend: the same 4/8-lane model executed one lane at a
// time with the exact per-lane semantics documented above.
// ---------------------------------------------------------------------------

struct MaskD {
  bool m[kLanesD];

  static MaskD none() { return {{false, false, false, false}}; }
  static MaskD first_n(int n) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = l < n;
    return r;
  }
  bool any() const {
    for (bool b : m) {
      if (b) return true;
    }
    return false;
  }
  bool all() const {
    for (bool b : m) {
      if (!b) return false;
    }
    return true;
  }
  bool lane(int i) const { return m[i]; }
  int bits() const {
    int r = 0;
    for (int l = 0; l < kLanesD; ++l) r |= (m[l] ? 1 : 0) << l;
    return r;
  }
  friend MaskD operator&(MaskD a, MaskD b) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = a.m[l] && b.m[l];
    return r;
  }
  friend MaskD operator|(MaskD a, MaskD b) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = a.m[l] || b.m[l];
    return r;
  }
  friend MaskD andnot(MaskD a, MaskD b) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = a.m[l] && !b.m[l];
    return r;
  }
};

struct VecI {
  int v[kLanesD];

  static VecI broadcast(int x) { return {{x, x, x, x}}; }
  static VecI loadu(const int* p) { return {{p[0], p[1], p[2], p[3]}}; }
  void storeu(int* p) const {
    for (int l = 0; l < kLanesD; ++l) p[l] = v[l];
  }
  int lane(int i) const { return v[i]; }
  static VecI gather(const int* base, VecI idx) {
    VecI r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = base[idx.v[l]];
    return r;
  }
  friend VecI operator+(VecI a, VecI b) {
    VecI r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  friend VecI operator*(VecI a, VecI b) {
    VecI r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  friend VecI min(VecI a, VecI b) {
    VecI r;
    for (int l = 0; l < kLanesD; ++l) {
      r.v[l] = a.v[l] < b.v[l] ? a.v[l] : b.v[l];
    }
    return r;
  }
  friend VecI max(VecI a, VecI b) {
    VecI r;
    for (int l = 0; l < kLanesD; ++l) {
      r.v[l] = a.v[l] > b.v[l] ? a.v[l] : b.v[l];
    }
    return r;
  }
};

struct VecD {
  double v[kLanesD];

  static VecD zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
  static VecD broadcast(double x) { return {{x, x, x, x}}; }
  static VecD loadu(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
  void storeu(double* p) const {
    for (int l = 0; l < kLanesD; ++l) p[l] = v[l];
  }
  double lane(int i) const { return v[i]; }

  static VecD gather(const double* base, VecI idx) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = base[idx.v[l]];
    return r;
  }
  static VecD mask_gather(const double* base, VecI idx, MaskD m) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = m.m[l] ? base[idx.v[l]] : 0.0;
    return r;
  }

  friend VecD operator+(VecD a, VecD b) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  friend VecD operator-(VecD a, VecD b) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
  }
  friend VecD operator*(VecD a, VecD b) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  friend VecD operator/(VecD a, VecD b) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = a.v[l] / b.v[l];
    return r;
  }
  friend VecD operator-(VecD a) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = 0.0 - a.v[l];
    return r;
  }

  friend VecD fma(VecD a, VecD b, VecD c) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = std::fma(a.v[l], b.v[l],
                                                        c.v[l]);
    return r;
  }
  friend VecD sqrt(VecD a) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = std::sqrt(a.v[l]);
    return r;
  }
  // Intel min/max semantics, not std::min: a OP b ? a : b.
  friend VecD min(VecD a, VecD b) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) {
      r.v[l] = a.v[l] < b.v[l] ? a.v[l] : b.v[l];
    }
    return r;
  }
  friend VecD max(VecD a, VecD b) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) {
      r.v[l] = a.v[l] > b.v[l] ? a.v[l] : b.v[l];
    }
    return r;
  }
  friend VecD round_nearest(VecD a) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = std::nearbyint(a.v[l]);
    return r;
  }

  friend MaskD cmp_lt(VecD a, VecD b) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = a.v[l] < b.v[l];
    return r;
  }
  friend MaskD cmp_le(VecD a, VecD b) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = a.v[l] <= b.v[l];
    return r;
  }
  friend MaskD cmp_gt(VecD a, VecD b) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = a.v[l] > b.v[l];
    return r;
  }
  friend MaskD cmp_ge(VecD a, VecD b) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = a.v[l] >= b.v[l];
    return r;
  }
  friend MaskD cmp_eq(VecD a, VecD b) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = a.v[l] == b.v[l];
    return r;
  }
  friend MaskD cmp_ne(VecD a, VecD b) {
    MaskD r;
    for (int l = 0; l < kLanesD; ++l) r.m[l] = !(a.v[l] == b.v[l]);
    return r;
  }

  friend VecD blend(MaskD m, VecD a, VecD b) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = m.m[l] ? a.v[l] : b.v[l];
    return r;
  }

  double reduce_ordered() const {
    return ((v[0] + v[1]) + v[2]) + v[3];
  }

  friend VecI truncate(VecD a) {
    VecI r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = static_cast<int>(a.v[l]);
    return r;
  }
  static VecD from_int(VecI a) {
    VecD r;
    for (int l = 0; l < kLanesD; ++l) r.v[l] = static_cast<double>(a.v[l]);
    return r;
  }
};

inline void prefetch(const void* p) {
#if defined(__GNUC__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

inline void load_fields4(const double* base, VecI idx, VecD& f0, VecD& f1,
                         VecD& f2, VecD& f3) {
  for (int l = 0; l < kLanesD; ++l) {
    const double* rec = base + idx.v[l];
    f0.v[l] = rec[0];
    f1.v[l] = rec[1];
    f2.v[l] = rec[2];
    f3.v[l] = rec[3];
  }
}

inline VecD cmul(VecD a, VecD b) {
  VecD r;
  for (int p = 0; p < kLanesD; p += 2) {
    const double ar = a.v[p], ai = a.v[p + 1];
    const double br = b.v[p], bi = b.v[p + 1];
    r.v[p] = ar * br - ai * bi;
    r.v[p + 1] = ai * br + ar * bi;
  }
  return r;
}

struct MaskF {
  bool m[kLanesF];

  static MaskF first_n(int n) {
    MaskF r;
    for (int l = 0; l < kLanesF; ++l) r.m[l] = l < n;
    return r;
  }
  bool any() const {
    for (bool b : m) {
      if (b) return true;
    }
    return false;
  }
  bool all() const {
    for (bool b : m) {
      if (!b) return false;
    }
    return true;
  }
  bool lane(int i) const { return m[i]; }
  friend MaskF operator&(MaskF a, MaskF b) {
    MaskF r;
    for (int l = 0; l < kLanesF; ++l) r.m[l] = a.m[l] && b.m[l];
    return r;
  }
  friend MaskF operator|(MaskF a, MaskF b) {
    MaskF r;
    for (int l = 0; l < kLanesF; ++l) r.m[l] = a.m[l] || b.m[l];
    return r;
  }
};

struct VecF {
  float v[kLanesF];

  static VecF zero() { return {{0, 0, 0, 0, 0, 0, 0, 0}}; }
  static VecF broadcast(float x) { return {{x, x, x, x, x, x, x, x}}; }
  static VecF loadu(const float* p) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) r.v[l] = p[l];
    return r;
  }
  void storeu(float* p) const {
    for (int l = 0; l < kLanesF; ++l) p[l] = v[l];
  }
  float lane(int i) const { return v[i]; }

  friend VecF operator+(VecF a, VecF b) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  friend VecF operator-(VecF a, VecF b) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
  }
  friend VecF operator*(VecF a, VecF b) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  friend VecF operator/(VecF a, VecF b) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) r.v[l] = a.v[l] / b.v[l];
    return r;
  }
  friend VecF fma(VecF a, VecF b, VecF c) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) {
      r.v[l] = std::fma(a.v[l], b.v[l], c.v[l]);
    }
    return r;
  }
  friend VecF sqrt(VecF a) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) r.v[l] = std::sqrt(a.v[l]);
    return r;
  }
  friend VecF min(VecF a, VecF b) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) {
      r.v[l] = a.v[l] < b.v[l] ? a.v[l] : b.v[l];
    }
    return r;
  }
  friend VecF max(VecF a, VecF b) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) {
      r.v[l] = a.v[l] > b.v[l] ? a.v[l] : b.v[l];
    }
    return r;
  }
  friend MaskF cmp_lt(VecF a, VecF b) {
    MaskF r;
    for (int l = 0; l < kLanesF; ++l) r.m[l] = a.v[l] < b.v[l];
    return r;
  }
  friend MaskF cmp_ge(VecF a, VecF b) {
    MaskF r;
    for (int l = 0; l < kLanesF; ++l) r.m[l] = a.v[l] >= b.v[l];
    return r;
  }
  friend VecF blend(MaskF m, VecF a, VecF b) {
    VecF r;
    for (int l = 0; l < kLanesF; ++l) r.v[l] = m.m[l] ? a.v[l] : b.v[l];
    return r;
  }
  float reduce_ordered() const {
    float acc = v[0];
    for (int l = 1; l < kLanesF; ++l) acc += v[l];
    return acc;
  }
};

#endif  // ANTON_SIMD_AVX2

}  // namespace anton::simd
