// Tiny typed key=value configuration store.
//
// Used by examples and the bench harness to override machine / simulation
// parameters from the command line ("key=value" tokens) without a heavyweight
// flags library.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace anton {

class Config {
 public:
  Config() = default;

  // Parses "key=value" tokens; unknown tokens raise.
  static Config from_args(int argc, const char* const* argv);
  static Config from_tokens(const std::vector<std::string>& tokens);

  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  int64_t get_int(const std::string& key, int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

// Estimator-service knobs, parsed from the standard GNU-style flags:
//
//   --svc-threads N       worker threads (0 = hardware concurrency; the
//                         value sizes the ThreadPool handed to the service)
//   --svc-cache-mb N      result-cache budget in MiB
//   --svc-queue-depth N   max queued jobs before load-shedding kicks in
//
// Defaults match the struct initializers below; every service frontend
// (examples/sweep_service, bench_f9_service) parses these the same way so
// deployment scripts can share one flag vocabulary.
struct SvcFlags {
  int threads = 0;          // --svc-threads (0 = all cores)
  int cache_mb = 64;        // --svc-cache-mb
  int queue_depth = 256;    // --svc-queue-depth

  static SvcFlags from_config(const Config& config);
  size_t cache_bytes() const {
    return static_cast<size_t>(cache_mb) * 1024 * 1024;
  }
};

}  // namespace anton
