// Tiny typed key=value configuration store.
//
// Used by examples and the bench harness to override machine / simulation
// parameters from the command line ("key=value" tokens) without a heavyweight
// flags library.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace anton {

class Config {
 public:
  Config() = default;

  // Parses "key=value" tokens; unknown tokens raise.
  static Config from_args(int argc, const char* const* argv);
  static Config from_tokens(const std::vector<std::string>& tokens);

  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  int64_t get_int(const std::string& key, int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace anton
