// Counter-based pseudo-random number generation (Philox-style).
//
// Anton-class machines need *reproducible* randomness that is independent of
// the number of nodes and the order of execution: the same (seed, stream,
// counter) tuple must give the same value no matter which node asks.  A
// counter-based generator provides exactly that, which is why we use a
// Philox 2x64-10 core rather than a stateful Mersenne engine.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/vec3.h"

namespace anton {

// Philox 2x64 round function constants (from Salmon et al., SC'11 —
// fittingly, J. Salmon is also an Anton author).
class Philox2x64 {
 public:
  // Canonical Philox 2x64 carries a single 64-bit key; the stream selector
  // becomes the high word of the 128-bit counter.
  explicit Philox2x64(uint64_t key) : key_(key) {}

  // Returns 128 bits of output for a given counter value.
  struct Output {
    uint64_t a, b;
  };

  Output operator()(uint64_t counter_hi, uint64_t counter_lo) const {
    uint64_t x0 = counter_lo, x1 = counter_hi;
    uint64_t k = key_;
    for (int round = 0; round < 10; ++round) {
      const uint64_t hi = mulhi(kMul, x0);
      const uint64_t lo = kMul * x0;
      x0 = hi ^ x1 ^ k;
      x1 = lo;
      k += kWeyl;
    }
    return {x0, x1};
  }

 private:
  static constexpr uint64_t kMul = 0xD2B74407B1CE6E93ull;
  static constexpr uint64_t kWeyl = 0x9E3779B97F4A7C15ull;

  static uint64_t mulhi(uint64_t a, uint64_t b) {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(a) * static_cast<__uint128_t>(b)) >> 64);
  }

  uint64_t key_;
};

// Convenience stateful wrapper with uniform / gaussian draws.  The state is
// only the counter; two Rng objects with the same (seed, stream) produce the
// same sequence.
class Rng {
 public:
  explicit Rng(uint64_t seed, uint64_t stream = 0)
      : core_(seed), stream_(stream), counter_(0) {}

  uint64_t next_u64() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    const auto out = core_(stream_, counter_++);
    spare_ = out.b;
    have_spare_ = true;
    return out.a;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  uint64_t uniform_u64(uint64_t n) {
    // Lemire's multiply-shift rejection-free mapping is fine for our use
    // (n << 2^64, bias < 2^-40).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next_u64()) * n) >> 64);
  }

  // Standard normal via Box–Muller (polar-free form; deterministic draw
  // count of 2 uniforms per pair of normals).
  double gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return gauss_;
    }
    // Avoid log(0).
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    gauss_ = r * std::sin(theta);
    have_gauss_ = true;
    return r * std::cos(theta);
  }

  Vec3 gaussian_vec3() { return {gaussian(), gaussian(), gaussian()}; }

  // Uniform point in an axis-aligned box [0,L).
  Vec3 uniform_in_box(const Vec3& lengths) {
    return {uniform() * lengths.x, uniform() * lengths.y,
            uniform() * lengths.z};
  }

  // Uniform direction on the unit sphere.
  Vec3 unit_vector() {
    const double z = uniform(-1.0, 1.0);
    const double phi = uniform(0.0, 2.0 * M_PI);
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    return {r * std::cos(phi), r * std::sin(phi), z};
  }

  uint64_t counter() const { return counter_; }

 private:
  Philox2x64 core_;
  uint64_t stream_;
  uint64_t counter_;
  uint64_t spare_ = 0;
  bool have_spare_ = false;
  double gauss_ = 0.0;
  bool have_gauss_ = false;
};

// Hash combiner for deriving per-entity streams (e.g. per-atom Langevin
// noise streams) from a master seed.
inline uint64_t mix_seed(uint64_t a, uint64_t b) {
  uint64_t x = a + 0x9E3779B97F4A7C15ull + (b << 6) + (b >> 2);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace anton
