// Lightweight statistics helpers used by the performance model, the NoC
// utilization accounting, and the test suite.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.h"

namespace anton {

// Welford running mean/variance with min/max.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / total;
    mean_ = (na * mean_ + nb * o.mean_) / total;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bin histogram over [lo, hi); out-of-range samples land in the first /
// last bin so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins)
      : lo_(lo), hi_(hi), bins_(bins), counts_(static_cast<size_t>(bins), 0) {
    ANTON_CHECK(bins > 0 && hi > lo);
  }

  void add(double x) {
    // Clamp in double space before the int cast: a float-to-int conversion
    // whose value doesn't fit (huge x, or x = inf/NaN) is undefined
    // behaviour.  NaN compares false against both bounds and falls through
    // to the first bin rather than poisoning the cast.
    double pos = (x - lo_) / (hi_ - lo_) * bins_;
    if (!(pos > 0.0)) pos = 0.0;
    const double top = static_cast<double>(bins_ - 1);
    if (pos > top) pos = top;
    ++counts_[static_cast<size_t>(pos)];
    ++total_;
  }

  uint64_t count(int bin) const { return counts_.at(static_cast<size_t>(bin)); }
  uint64_t total() const { return total_; }
  int bins() const { return bins_; }
  double bin_lo(int bin) const { return lo_ + (hi_ - lo_) * bin / bins_; }
  double bin_hi(int bin) const { return lo_ + (hi_ - lo_) * (bin + 1) / bins_; }

  // Value below which `q` of the mass lies (linear within the bin).
  double quantile(double q) const {
    ANTON_CHECK(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return lo_;
    const double target = q * static_cast<double>(total_);
    // Integer cumulative count: the loop's termination test must be exact.
    // The old floating-point accumulator could miss `cum + c >= target` by
    // one ulp when the final populated bin held the target mass, falling
    // through to hi_ even though the distribution never reaches it.
    uint64_t cum = 0;
    int last_populated = -1;
    for (int b = 0; b < bins_; ++b) {
      const uint64_t c = counts_[static_cast<size_t>(b)];
      if (c == 0) continue;  // empty bins hold no mass at any quantile
      last_populated = b;
      if (static_cast<double>(cum + c) >= target) {
        const double frac = std::clamp(
            (target - static_cast<double>(cum)) / static_cast<double>(c), 0.0,
            1.0);
        return bin_lo(b) + frac * (bin_hi(b) - bin_lo(b));
      }
      cum = cum + c;
    }
    // Roundoff pushed target above total_: the answer is the top of the last
    // populated bin, not hi_ (which may be arbitrarily far beyond the data).
    return bin_hi(last_populated);
  }

 private:
  double lo_, hi_;
  int bins_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace anton
