// Deterministic fixed-point accumulation.
//
// Anton machines accumulate forces in fixed point so that sums are exactly
// associative: the result is bitwise identical regardless of the order in
// which contributions arrive over the network.  This is essential for an
// event-driven machine, where arrival order is timing-dependent.  We model
// the same scheme: a 64-bit signed accumulator with a compile-time binary
// scale.  With a 2^32 scale, the dynamic range is ±2^31 ≈ ±2.1e9 units with
// a resolution of 2.3e-10 — ample for forces in kcal/mol/Å.
#pragma once

#include <cstdint>
#include <limits>

#include "common/error.h"
#include "common/vec3.h"

namespace anton {

template <int FracBits = 32>
class Fixed {
  static_assert(FracBits > 0 && FracBits < 63);

 public:
  constexpr Fixed() = default;

  // Converts with round-half-away-from-zero, saturating at the int64 rails
  // (casting an out-of-range double to int64_t is undefined behaviour; the
  // hardware datapath this models clamps).  NaN maps to zero.
  static constexpr Fixed from_double(double v) {
    Fixed f;
    const double scaled =
        v * kScale + (v >= 0 ? 0.5 : -0.5);  // anton-lint: allow(fixed-literal)
    // 2^63 is exactly representable as a double; any scaled value >= it (or
    // < -2^63) would overflow the cast.
    constexpr double kRail =
        static_cast<double>(std::numeric_limits<int64_t>::max());
    if (!(scaled == scaled)) {
      f.raw_ = 0;
    } else if (scaled >= kRail) {
      f.raw_ = std::numeric_limits<int64_t>::max();
    } else if (scaled < -kRail) {
      f.raw_ = std::numeric_limits<int64_t>::min();
    } else {
      f.raw_ = static_cast<int64_t>(scaled);
    }
    return f;
  }
  static constexpr Fixed from_raw(int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  constexpr double to_double() const {
    return static_cast<double>(raw_) / kScale;
  }
  constexpr int64_t raw() const { return raw_; }

  // Addition wraps on overflow like the hardware adder would.  Signed
  // overflow is undefined behaviour in C++, so the wrap is computed in
  // unsigned arithmetic (well-defined mod 2^64) and cast back.
  constexpr Fixed& operator+=(const Fixed& o) {
    raw_ = static_cast<int64_t>(static_cast<uint64_t>(raw_) +
                                static_cast<uint64_t>(o.raw_));
    return *this;
  }
  constexpr Fixed& operator-=(const Fixed& o) {
    raw_ = static_cast<int64_t>(static_cast<uint64_t>(raw_) -
                                static_cast<uint64_t>(o.raw_));
    return *this;
  }
  friend constexpr Fixed operator+(Fixed a, const Fixed& b) { return a += b; }
  friend constexpr Fixed operator-(Fixed a, const Fixed& b) { return a -= b; }
  friend constexpr bool operator==(const Fixed& a, const Fixed& b) {
    return a.raw_ == b.raw_;
  }

  static constexpr double resolution() { return 1.0 / kScale; }
  static constexpr double max_magnitude() {
    return static_cast<double>(std::numeric_limits<int64_t>::max()) / kScale;
  }

 private:
  static constexpr double kScale = static_cast<double>(int64_t{1} << FracBits);
  int64_t raw_ = 0;
};

// Force accumulator: three fixed-point lanes.  Addition is exactly
// associative and commutative, so accumulation order cannot change results.
template <int FracBits = 32>
struct FixedVec3 {
  Fixed<FracBits> x, y, z;

  static FixedVec3 from_vec3(const Vec3& v) {
    return {Fixed<FracBits>::from_double(v.x), Fixed<FracBits>::from_double(v.y),
            Fixed<FracBits>::from_double(v.z)};
  }
  Vec3 to_vec3() const { return {x.to_double(), y.to_double(), z.to_double()}; }

  FixedVec3& operator+=(const FixedVec3& o) {
    x += o.x; y += o.y; z += o.z; return *this;
  }
  friend FixedVec3 operator+(FixedVec3 a, const FixedVec3& b) { return a += b; }
  friend bool operator==(const FixedVec3& a, const FixedVec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  void accumulate(const Vec3& v) { *this += from_vec3(v); }
};

using ForceFixed = FixedVec3<32>;

}  // namespace anton
