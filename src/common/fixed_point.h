// Deterministic fixed-point accumulation.
//
// Anton machines accumulate forces in fixed point so that sums are exactly
// associative: the result is bitwise identical regardless of the order in
// which contributions arrive over the network.  This is essential for an
// event-driven machine, where arrival order is timing-dependent.  We model
// the same scheme: a 64-bit signed accumulator with a compile-time binary
// scale.  With a 2^32 scale, the dynamic range is ±2^31 ≈ ±2.1e9 units with
// a resolution of 2.3e-10 — ample for forces in kcal/mol/Å.
#pragma once

#include <cstdint>
#include <limits>

#include "common/error.h"
#include "common/vec3.h"

namespace anton {

template <int FracBits = 32>
class Fixed {
  static_assert(FracBits > 0 && FracBits < 63);

 public:
  constexpr Fixed() = default;

  static constexpr Fixed from_double(double v) {
    Fixed f;
    f.raw_ = static_cast<int64_t>(v * kScale + (v >= 0 ? 0.5 : -0.5));
    return f;
  }
  static constexpr Fixed from_raw(int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  constexpr double to_double() const {
    return static_cast<double>(raw_) / kScale;
  }
  constexpr int64_t raw() const { return raw_; }

  constexpr Fixed& operator+=(const Fixed& o) {
    raw_ += o.raw_;  // wraps on overflow like the hardware adder would
    return *this;
  }
  constexpr Fixed& operator-=(const Fixed& o) {
    raw_ -= o.raw_;
    return *this;
  }
  friend constexpr Fixed operator+(Fixed a, const Fixed& b) { return a += b; }
  friend constexpr Fixed operator-(Fixed a, const Fixed& b) { return a -= b; }
  friend constexpr bool operator==(const Fixed& a, const Fixed& b) {
    return a.raw_ == b.raw_;
  }

  static constexpr double resolution() { return 1.0 / kScale; }
  static constexpr double max_magnitude() {
    return static_cast<double>(std::numeric_limits<int64_t>::max()) / kScale;
  }

 private:
  static constexpr double kScale = static_cast<double>(int64_t{1} << FracBits);
  int64_t raw_ = 0;
};

// Force accumulator: three fixed-point lanes.  Addition is exactly
// associative and commutative, so accumulation order cannot change results.
template <int FracBits = 32>
struct FixedVec3 {
  Fixed<FracBits> x, y, z;

  static FixedVec3 from_vec3(const Vec3& v) {
    return {Fixed<FracBits>::from_double(v.x), Fixed<FracBits>::from_double(v.y),
            Fixed<FracBits>::from_double(v.z)};
  }
  Vec3 to_vec3() const { return {x.to_double(), y.to_double(), z.to_double()}; }

  FixedVec3& operator+=(const FixedVec3& o) {
    x += o.x; y += o.y; z += o.z; return *this;
  }
  friend FixedVec3 operator+(FixedVec3 a, const FixedVec3& b) { return a += b; }
  friend bool operator==(const FixedVec3& a, const FixedVec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  void accumulate(const Vec3& v) { *this += from_vec3(v); }
};

using ForceFixed = FixedVec3<32>;

}  // namespace anton
