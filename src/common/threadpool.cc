#include "common/threadpool.h"

#include <algorithm>

namespace anton {

ThreadPool::ThreadPool(unsigned n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  for (unsigned i = 1; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Keep one task for the calling thread.
  std::function<void()> mine = std::move(tasks.back());
  tasks.pop_back();
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_ += tasks.size();
    for (auto& t : tasks) queue_.push_back(std::move(t));
  }
  cv_.notify_all();
  mine();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t threads = std::min<size_t>(size(), n);
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(threads);
  const size_t chunk = (n + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    tasks.push_back([&fn, begin, end] { fn(begin, end); });
  }
  run_batch(std::move(tasks));
}

void ThreadPool::for_each_thread(const std::function<void(unsigned)>& fn) {
  std::vector<std::function<void()>> tasks;
  const unsigned threads = size();
  tasks.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    tasks.push_back([&fn, t] { fn(t); });
  }
  run_batch(std::move(tasks));
}

}  // namespace anton
