#include "common/threadpool.h"

namespace anton {

ThreadPool::ThreadPool(unsigned n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates in every dispatch as index 0, so spawn
  // one fewer worker; worker i services index i + 1.
  workers_.reserve(n_threads - 1);
  for (unsigned i = 1; i < n_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned index) {
  uint64_t seen = 0;
  for (;;) {
    void (*fn)(void*, unsigned);
    void* ctx;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      ctx = ctx_;
    }
    fn(ctx, index);
    // acq_rel: the release half publishes everything this chunk wrote to the
    // dispatcher's acquire load; the acquire half orders this thread against
    // the other workers' decrements.  The final decrementer must take mu_
    // before notifying: the dispatcher only blocks while holding mu_, so the
    // lock ensures it is either not yet waiting (and will re-test the
    // predicate) or parked (and receives the notify) — no lost wakeup.
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::dispatch(void (*fn)(void*, unsigned), void* ctx) {
  if (workers_.empty()) {
    fn(ctx, 0);
    return;
  }
  std::lock_guard<std::mutex> serialize(dispatch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = fn;
    ctx_ = ctx;
    remaining_.store(static_cast<unsigned>(workers_.size()),
                     std::memory_order_relaxed);
    ++generation_;
  }
  cv_.notify_all();
  fn(ctx, 0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace anton
