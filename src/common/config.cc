#include "common/config.h"

#include <cstdlib>

#include "common/error.h"

namespace anton {

Config Config::from_args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return from_tokens(tokens);
}

Config Config::from_tokens(const std::vector<std::string>& tokens) {
  Config c;
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::string tok = tokens[i];
    // GNU-style flags: "--key=value", "--key value", bare "--flag" (true).
    const bool dashed = tok.rfind("--", 0) == 0 && tok.size() > 2;
    if (dashed) tok = tok.substr(2);
    const auto eq = tok.find('=');
    if (eq != std::string::npos && eq > 0) {
      c.set(tok.substr(0, eq), tok.substr(eq + 1));
      continue;
    }
    ANTON_CHECK_MSG(dashed && eq != 0,
                    "expected key=value or --key [value], got '" << tokens[i]
                                                                 << "'");
    // "--key value" when the next token isn't itself a key; else a bare
    // boolean flag.
    const bool next_is_value =
        i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0 &&
        tokens[i + 1].find('=') == std::string::npos;
    if (next_is_value) {
      c.set(tok, tokens[++i]);
    } else {
      c.set(tok, "true");
    }
  }
  return c;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Config::get_int(const std::string& key, int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  ANTON_CHECK_MSG(end && *end == '\0',
                  "config key '" << key << "': bad integer '" << it->second
                                 << "'");
  return v;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  ANTON_CHECK_MSG(end && *end == '\0',
                  "config key '" << key << "': bad number '" << it->second
                                 << "'");
  return v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  ANTON_CHECK_MSG(false, "config key '" << key << "': bad bool '" << s << "'");
  return fallback;
}

SvcFlags SvcFlags::from_config(const Config& config) {
  SvcFlags f;
  f.threads = static_cast<int>(config.get_int("svc-threads", f.threads));
  f.cache_mb = static_cast<int>(config.get_int("svc-cache-mb", f.cache_mb));
  f.queue_depth =
      static_cast<int>(config.get_int("svc-queue-depth", f.queue_depth));
  ANTON_CHECK_MSG(f.threads >= 0, "--svc-threads must be >= 0");
  ANTON_CHECK_MSG(f.cache_mb > 0, "--svc-cache-mb must be > 0");
  ANTON_CHECK_MSG(f.queue_depth > 0, "--svc-queue-depth must be > 0");
  return f;
}

}  // namespace anton
