#include "common/hilbert.h"

namespace anton {

namespace {
constexpr int kDims = 3;

// Skilling's TransposetoAxes / AxestoTranspose, specialised to 3D.
void transpose_to_axes(std::array<uint32_t, kDims>& x, int bits) {
  uint32_t n = 2, p, q, t;
  // Gray decode by H ^ (H/2).
  t = x[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i) x[static_cast<size_t>(i)] ^= x[static_cast<size_t>(i - 1)];
  x[0] ^= t;
  // Undo excess work.
  for (q = 2; q != (1u << bits); q <<= 1) {
    p = q - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (x[static_cast<size_t>(i)] & q) {
        x[0] ^= p;  // invert
      } else {
        t = (x[0] ^ x[static_cast<size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<size_t>(i)] ^= t;
      }
    }
  }
  (void)n;
}

void axes_to_transpose(std::array<uint32_t, kDims>& x, int bits) {
  uint32_t m = 1u << (bits - 1), p, q, t;
  // Inverse undo.
  for (q = m; q > 1; q >>= 1) {
    p = q - 1;
    for (int i = 0; i < kDims; ++i) {
      if (x[static_cast<size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[static_cast<size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < kDims; ++i) x[static_cast<size_t>(i)] ^= x[static_cast<size_t>(i - 1)];
  t = 0;
  for (q = m; q > 1; q >>= 1) {
    if (x[kDims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < kDims; ++i) x[static_cast<size_t>(i)] ^= t;
}

// Interleave the transpose representation into a single index: bit b of
// axis a contributes to index bit (b*3 + (2-a)).
uint64_t pack_transpose(const std::array<uint32_t, kDims>& x, int bits) {
  uint64_t h = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      h = (h << 1) | ((x[static_cast<size_t>(i)] >> b) & 1u);
    }
  }
  return h;
}

std::array<uint32_t, kDims> unpack_transpose(uint64_t h, int bits) {
  std::array<uint32_t, kDims> x{0, 0, 0};
  for (int b = 0; b < bits; ++b) {
    for (int i = kDims - 1; i >= 0; --i) {
      x[static_cast<size_t>(i)] |=
          static_cast<uint32_t>((h >> (3 * (bits - 1 - b) + (2 - i))) & 1u)
          << (bits - 1 - b);
    }
  }
  // Rebuild: bit layout must mirror pack_transpose exactly.
  x = {0, 0, 0};
  int shift = 3 * bits - 1;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      x[static_cast<size_t>(i)] |=
          static_cast<uint32_t>((h >> shift) & 1u) << b;
      --shift;
    }
  }
  return x;
}

}  // namespace

uint64_t hilbert_encode(uint32_t x, uint32_t y, uint32_t z, int bits) {
  ANTON_CHECK_MSG(bits >= 1 && bits <= 20, "bits out of range");
  ANTON_CHECK_MSG(x < (1u << bits) && y < (1u << bits) && z < (1u << bits),
                  "coordinate out of range for " << bits << " bits");
  std::array<uint32_t, kDims> axes{x, y, z};
  axes_to_transpose(axes, bits);
  return pack_transpose(axes, bits);
}

HilbertCoords hilbert_decode(uint64_t index, int bits) {
  ANTON_CHECK_MSG(bits >= 1 && bits <= 20, "bits out of range");
  auto axes = unpack_transpose(index, bits);
  transpose_to_axes(axes, bits);
  return {axes[0], axes[1], axes[2]};
}

}  // namespace anton
