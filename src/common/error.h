// Error handling primitives for anton2sim.
//
// The library is exception-based at API boundaries (constructors, loaders)
// and assertion-based in hot inner loops (ANTON_DCHECK compiles away in
// release builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace anton {

// Thrown for invalid user input / configuration at API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "ANTON_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace anton

// Always-on invariant check. Use for API preconditions and cheap invariants.
#define ANTON_CHECK(cond)                                            \
  do {                                                               \
    if (!(cond)) ::anton::detail::fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define ANTON_CHECK_MSG(cond, msg)                               \
  do {                                                           \
    if (!(cond)) {                                               \
      std::ostringstream anton_os_;                              \
      anton_os_ << msg;                                          \
      ::anton::detail::fail(#cond, __FILE__, __LINE__, anton_os_.str()); \
    }                                                            \
  } while (0)

// Debug-only check for hot loops.
#ifdef NDEBUG
#define ANTON_DCHECK(cond) ((void)0)
#else
#define ANTON_DCHECK(cond) ANTON_CHECK(cond)
#endif

// ---------------------------------------------------------------------------
// Runtime invariant layer.
//
// ANTON_ASSERT / ANTON_CHECK_INVARIANT express structural invariants that are
// too expensive for release builds (CSR well-formedness scans, net-zero force
// sums, per-link packet conservation).  They compile to nothing unless
// ANTON_ENABLE_INVARIANTS is 1, which is the default in debug builds and is
// forced on by the sanitizer build matrix (ANTON_SANITIZE=... presets), so
// every sanitizer run also exercises the invariant validators.
#if !defined(ANTON_ENABLE_INVARIANTS)
#ifdef NDEBUG
#define ANTON_ENABLE_INVARIANTS 0
#else
#define ANTON_ENABLE_INVARIANTS 1
#endif
#endif

namespace anton {
// Compile-time flag for guarding whole validation passes:
//   if constexpr (kInvariantsEnabled) { validate(); }
inline constexpr bool kInvariantsEnabled = ANTON_ENABLE_INVARIANTS != 0;
}  // namespace anton

#if ANTON_ENABLE_INVARIANTS
#define ANTON_ASSERT(cond) ANTON_CHECK(cond)
#define ANTON_CHECK_INVARIANT(cond, msg) ANTON_CHECK_MSG(cond, msg)
#else
#define ANTON_ASSERT(cond) ((void)0)
#define ANTON_CHECK_INVARIANT(cond, msg) ((void)0)
#endif
