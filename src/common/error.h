// Error handling primitives for anton2sim.
//
// The library is exception-based at API boundaries (constructors, loaders)
// and assertion-based in hot inner loops (ANTON_DCHECK compiles away in
// release builds).
#pragma once

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace anton {

// Thrown for invalid user input / configuration at API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
// Observer invoked from fail() before the throw — the flight recorder
// (obs/flightrecorder.h) installs one so every ANTON_CHECK / invariant
// failure tags the in-memory timeline and dumps it.  Lives here, below the
// obs layer, so common/ stays dependency-free; must not throw (the real
// failure is about to be raised) and must tolerate concurrent failures.
using FailureHook = void (*)(const char* expr, const char* file,
                             int line) noexcept;

inline std::atomic<FailureHook>& failure_hook_slot() {
  static std::atomic<FailureHook> hook{nullptr};
  return hook;
}

inline void set_failure_hook(FailureHook hook) {
  failure_hook_slot().store(hook, std::memory_order_release);
}

inline void notify_failure_hook(const char* expr, const char* file,
                                int line) noexcept {
  if (FailureHook h = failure_hook_slot().load(std::memory_order_acquire)) {
    h(expr, file, line);
  }
}
// The cold failure traps.  A function that fails a check is aborting the
// run, so everything message-related (string building, stream formatting,
// the throw itself) lives behind these [[noreturn]] symbols.  The callgraph
// verifier (tools/anton_callgraph.py) cuts traversal at `anton::detail::fail`
// — a hot function's fast path must stay pure, but its trap may format.
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  notify_failure_hook(expr, file, line);
  std::ostringstream os;
  os << "ANTON_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

// Message-free overload: the only call ANTON_CHECK emits at its use site.
// Takes no std::string, so the caller's failure branch is a bare call —
// no allocation or stream construction appears in the caller's own body.
[[noreturn]] inline void fail(const char* expr, const char* file, int line) {
  fail(expr, file, line, std::string());
}

// ANTON_CHECK_MSG defers its stream formatting into a callable invoked here,
// behind the cold cut, instead of expanding an ostringstream at the use site.
template <class Emit>
[[noreturn]] inline void fail_with(const char* expr, const char* file,
                                   int line, Emit&& emit) {
  std::ostringstream os;
  emit(os);
  fail(expr, file, line, os.str());
}
}  // namespace detail

}  // namespace anton

// Always-on invariant check. Use for API preconditions and cheap invariants.
#define ANTON_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::anton::detail::fail(#cond, __FILE__, __LINE__);     \
  } while (0)

// The message expression is evaluated only on failure, inside the cold trap:
// the macro packages it as a lambda streamed by detail::fail_with.
#define ANTON_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::anton::detail::fail_with(                                      \
          #cond, __FILE__, __LINE__,                                   \
          [&](std::ostream& anton_os_) { anton_os_ << msg; });         \
    }                                                                  \
  } while (0)

// Debug-only check for hot loops.
#ifdef NDEBUG
#define ANTON_DCHECK(cond) ((void)0)
#else
#define ANTON_DCHECK(cond) ANTON_CHECK(cond)
#endif

// ---------------------------------------------------------------------------
// Runtime invariant layer.
//
// ANTON_ASSERT / ANTON_CHECK_INVARIANT express structural invariants that are
// too expensive for release builds (CSR well-formedness scans, net-zero force
// sums, per-link packet conservation).  They compile to nothing unless
// ANTON_ENABLE_INVARIANTS is 1, which is the default in debug builds and is
// forced on by the sanitizer build matrix (ANTON_SANITIZE=... presets), so
// every sanitizer run also exercises the invariant validators.
#if !defined(ANTON_ENABLE_INVARIANTS)
#ifdef NDEBUG
#define ANTON_ENABLE_INVARIANTS 0
#else
#define ANTON_ENABLE_INVARIANTS 1
#endif
#endif

namespace anton {
// Compile-time flag for guarding whole validation passes:
//   if constexpr (kInvariantsEnabled) { validate(); }
inline constexpr bool kInvariantsEnabled = ANTON_ENABLE_INVARIANTS != 0;
}  // namespace anton

#if ANTON_ENABLE_INVARIANTS
#define ANTON_ASSERT(cond) ANTON_CHECK(cond)
#define ANTON_CHECK_INVARIANT(cond, msg) ANTON_CHECK_MSG(cond, msg)
#else
#define ANTON_ASSERT(cond) ((void)0)
#define ANTON_CHECK_INVARIANT(cond, msg) ((void)0)
#endif

// ---------------------------------------------------------------------------
// Hot-path purity annotation.
//
// `ANTON_HOT_NOALLOC();` as the first statement of a function body marks it
// as a hot-path purity root: no allocation, no throw, no lock, and no
// iostream traffic may be reachable from it in steady state.  Two checkers
// consume the annotation:
//
//   * tools/anton_lint.py scans the function body intra-procedurally
//     (regex rules: hot-alloc and friends);
//   * tools/anton_callgraph.py proves the property interprocedurally in a
//     -DANTON_CALLGRAPH=ON build tree, where this macro expands to a call
//     to the marker function below.  Every annotated function then carries
//     a call edge to the marker in its GCC -fcallgraph-info record, so the
//     verifier extracts the roots with their exact mangled symbol names —
//     no name-matching heuristics, and template roots enumerate one symbol
//     per instantiation.
//
// In all other builds the macro compiles to nothing.
#if defined(ANTON_CALLGRAPH)
namespace anton::detail {
// noinline so every annotated function keeps its own call edge to this
// symbol; the empty asm pins the body against identical-code folding.
__attribute__((noinline)) inline void hot_noalloc_root() { asm(""); }
}  // namespace anton::detail
#define ANTON_HOT_NOALLOC() ::anton::detail::hot_noalloc_root()
#else
#define ANTON_HOT_NOALLOC() \
  do {                      \
  } while (0)
#endif
