// Error handling primitives for anton2sim.
//
// The library is exception-based at API boundaries (constructors, loaders)
// and assertion-based in hot inner loops (ANTON_DCHECK compiles away in
// release builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace anton {

// Thrown for invalid user input / configuration at API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "ANTON_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace anton

// Always-on invariant check. Use for API preconditions and cheap invariants.
#define ANTON_CHECK(cond)                                            \
  do {                                                               \
    if (!(cond)) ::anton::detail::fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define ANTON_CHECK_MSG(cond, msg)                               \
  do {                                                           \
    if (!(cond)) {                                               \
      std::ostringstream anton_os_;                              \
      anton_os_ << msg;                                          \
      ::anton::detail::fail(#cond, __FILE__, __LINE__, anton_os_.str()); \
    }                                                            \
  } while (0)

// Debug-only check for hot loops.
#ifdef NDEBUG
#define ANTON_DCHECK(cond) ((void)0)
#else
#define ANTON_DCHECK(cond) ANTON_CHECK(cond)
#endif
