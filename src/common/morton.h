// 3D Morton (Z-order) codes, used for spatial sorting of atoms so that
// memory layout follows spatial locality — the same trick Anton's software
// uses to keep cache/SRAM working sets tight.
#pragma once

#include <cstdint>

namespace anton {

namespace detail {
// Spread the low 21 bits of x so there are two zero bits between each bit.
inline uint64_t spread3(uint64_t x) {
  x &= 0x1FFFFF;  // 21 bits
  x = (x | (x << 32)) & 0x1F00000000FFFFull;
  x = (x | (x << 16)) & 0x1F0000FF0000FFull;
  x = (x | (x << 8)) & 0x100F00F00F00F00Full;
  x = (x | (x << 4)) & 0x10C30C30C30C30C3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}

inline uint64_t compact3(uint64_t x) {
  x &= 0x1249249249249249ull;
  x = (x ^ (x >> 2)) & 0x10C30C30C30C30C3ull;
  x = (x ^ (x >> 4)) & 0x100F00F00F00F00Full;
  x = (x ^ (x >> 8)) & 0x1F0000FF0000FFull;
  x = (x ^ (x >> 16)) & 0x1F00000000FFFFull;
  x = (x ^ (x >> 32)) & 0x1FFFFF;
  return x;
}
}  // namespace detail

// Interleaves the low 21 bits of (x, y, z) into a 63-bit Morton code.
inline uint64_t morton_encode(uint32_t x, uint32_t y, uint32_t z) {
  return detail::spread3(x) | (detail::spread3(y) << 1) |
         (detail::spread3(z) << 2);
}

struct MortonCoords {
  uint32_t x, y, z;
};

inline MortonCoords morton_decode(uint64_t code) {
  return {static_cast<uint32_t>(detail::compact3(code)),
          static_cast<uint32_t>(detail::compact3(code >> 1)),
          static_cast<uint32_t>(detail::compact3(code >> 2))};
}

}  // namespace anton
