// Plain-text table formatter for the bench harness, plus the uniform cubic
// interpolation table the MD pair kernels use to replace transcendental
// calls (Anton's PPIMs evaluate pairwise functionals from on-chip tables the
// same way).
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"

namespace anton {

// Uniformly-spaced cubic Hermite interpolation of a smooth f(x) on
// [x0, x1].  Nodes store the exact value and derivative, so the
// interpolant is C¹ and the max error is O(h⁴ max|f⁗|) — a few thousand
// nodes bound erfc-kernel errors far below integrator noise.
class CubicTable {
 public:
  CubicTable() = default;

  // Samples f and its derivative df at n_nodes equispaced points.
  template <class F, class DF>
  void build(double x0, double x1, int n_nodes, F&& f, DF&& df) {
    ANTON_CHECK_MSG(n_nodes >= 2 && x1 > x0, "bad interpolation table domain");
    x0_ = x0;
    n_ = n_nodes;
    h_ = (x1 - x0) / (n_nodes - 1);
    inv_h_ = 1.0 / h_;
    nodes_.resize(static_cast<size_t>(n_nodes));
    for (int k = 0; k < n_nodes; ++k) {
      const double x = x0 + k * h_;
      nodes_[static_cast<size_t>(k)] = {f(x), df(x)};
    }
  }

  bool built() const { return !nodes_.empty(); }
  double min_x() const { return x0_; }
  double max_x() const { return x0_ + (n_ - 1) * h_; }
  int num_nodes() const { return n_; }

  // Evaluates the interpolant; x is clamped to the table domain.
  double operator()(double x) const {
    double s = (x - x0_) * inv_h_;
    if (s < 0) s = 0;
    if (s > n_ - 1) s = n_ - 1;
    int k = static_cast<int>(s);
    if (k > n_ - 2) k = n_ - 2;
    const double t = s - k;
    const Node& a = nodes_[static_cast<size_t>(k)];
    const Node& b = nodes_[static_cast<size_t>(k) + 1];
    const double t2 = t * t;
    const double t3 = t2 * t;
    return (2 * t3 - 3 * t2 + 1) * a.v + (t3 - 2 * t2 + t) * h_ * a.d +
           (-2 * t3 + 3 * t2) * b.v + (t3 - t2) * h_ * b.d;
  }

 private:
  struct Node {
    double v, d;
  };
  std::vector<Node> nodes_;
  double x0_ = 0, h_ = 1, inv_h_ = 1;
  int n_ = 0;
};

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    ANTON_CHECK(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
  }

  // Convenience for numeric cells.
  static std::string fmt(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }
  static std::string fmt_int(int64_t v) { return std::to_string(v); }

  void print(std::ostream& os) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      os << "|";
      for (size_t c = 0; c < row.size(); ++c) {
        os << " " << std::setw(static_cast<int>(widths[c])) << std::left
           << row[c] << " |";
      }
      os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anton
