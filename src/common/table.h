// Plain-text table formatter for the bench harness: every experiment prints
// rows the way the paper's tables/figures report them.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"

namespace anton {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    ANTON_CHECK(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
  }

  // Convenience for numeric cells.
  static std::string fmt(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }
  static std::string fmt_int(int64_t v) { return std::to_string(v); }

  void print(std::ostream& os) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      os << "|";
      for (size_t c = 0; c < row.size(); ++c) {
        os << " " << std::setw(static_cast<int>(widths[c])) << std::left
           << row[c] << " |";
      }
      os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anton
