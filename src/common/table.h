// Plain-text table formatter for the bench harness, plus the uniform cubic
// interpolation table the MD pair kernels use to replace transcendental
// calls (Anton's PPIMs evaluate pairwise functionals from on-chip tables the
// same way).
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/simd.h"

namespace anton {

// Uniformly-spaced cubic Hermite interpolation of a smooth f(x) on
// [x0, x1].  Nodes store the exact value and derivative, so the
// interpolant is C¹ and the max error is O(h⁴ max|f⁗|) — a few thousand
// nodes bound erfc-kernel errors far below integrator noise.
class CubicTable {
 public:
  CubicTable() = default;

  // Samples f and its derivative df at n_nodes equispaced points.
  template <class F, class DF>
  void build(double x0, double x1, int n_nodes, F&& f, DF&& df) {
    ANTON_CHECK_MSG(n_nodes >= 2 && x1 > x0, "bad interpolation table domain");
    x0_ = x0;
    n_ = n_nodes;
    h_ = (x1 - x0) / (n_nodes - 1);
    inv_h_ = 1.0 / h_;
    nodes_.resize(static_cast<size_t>(n_nodes));
    for (int k = 0; k < n_nodes; ++k) {
      const double x = x0 + k * h_;
      nodes_[static_cast<size_t>(k)] = {f(x), df(x)};
    }
  }

  bool built() const { return !nodes_.empty(); }
  double min_x() const { return x0_; }
  double max_x() const { return x0_ + (n_ - 1) * h_; }
  int num_nodes() const { return n_; }

  // Evaluates the interpolant; x is clamped to the table domain.
  double operator()(double x) const {
    double s = (x - x0_) * inv_h_;
    if (s < 0) s = 0;
    if (s > n_ - 1) s = n_ - 1;
    int k = static_cast<int>(s);
    if (k > n_ - 2) k = n_ - 2;
    const double t = s - k;
    const Node& a = nodes_[static_cast<size_t>(k)];
    const Node& b = nodes_[static_cast<size_t>(k) + 1];
    const double t2 = t * t;
    const double t3 = t2 * t;
    return (2 * t3 - 3 * t2 + 1) * a.v + (t3 - 2 * t2 + t) * h_ * a.d +
           (-2 * t3 + 3 * t2) * b.v + (t3 - t2) * h_ * b.d;
  }

  // Lane-gathered batch evaluation: out[i] = (*this)(x[i]) for i < count,
  // bitwise identical to the scalar operator() for finite inputs (same
  // clamped index computation, same Hermite basis in the same evaluation
  // order, per lane).  The ragged tail pads the last abscissa into the
  // unused lanes and stores only the live ones.
  void eval_batch(const double* x, double* out, int count) const {
    using simd::VecD;
    using simd::VecI;
    constexpr int W = simd::kLanesD;
    const double* base = reinterpret_cast<const double*>(nodes_.data());
    const VecD v_x0 = VecD::broadcast(x0_);
    const VecD v_inv_h = VecD::broadcast(inv_h_);
    const VecD v_h = VecD::broadcast(h_);
    const VecD v_smax = VecD::broadcast(static_cast<double>(n_ - 1));
    const VecD v_zero = VecD::zero();
    const VecD v_one = VecD::broadcast(1.0);
    const VecD v_two = VecD::broadcast(2.0);
    const VecD v_three = VecD::broadcast(3.0);
    const VecI vi_zero = VecI::broadcast(0);
    const VecI vi_two = VecI::broadcast(2);
    const VecI vi_nmax = VecI::broadcast(n_ - 2);
    for (int c = 0; c < count; c += W) {
      const int cnt = count - c < W ? count - c : W;
      double xbuf[W];
      const double* xp = x + c;
      if (cnt < W) {
        for (int l = 0; l < W; ++l) xbuf[l] = xp[l < cnt ? l : cnt - 1];
        xp = xbuf;
      }
      VecD s = (VecD::loadu(xp) - v_x0) * v_inv_h;
      s = min(max(s, v_zero), v_smax);
      const VecI k = min(max(truncate(s), vi_zero), vi_nmax);
      const VecD t = s - VecD::from_int(k);
      // Nodes k and k+1 are 4 consecutive doubles {a.v, a.d, b.v, b.d}:
      // one record load per chunk (k is clamped to n-2, so node+3 is
      // in-range).
      const VecI node = k * vi_two;  // Node{v, d}: stride 2 doubles
      VecD a_v, a_d, b_v, b_d;
      simd::load_fields4(base, node, a_v, a_d, b_v, b_d);
      const VecD t2 = t * t;
      const VecD t3 = t2 * t;
      const VecD r = (v_two * t3 - v_three * t2 + v_one) * a_v +
                     (t3 - v_two * t2 + t) * v_h * a_d +
                     (v_three * t2 - v_two * t3) * b_v +
                     (t3 - t2) * v_h * b_d;
      if (cnt == W) {
        r.storeu(out + c);
      } else {
        double obuf[W];
        r.storeu(obuf);
        for (int l = 0; l < cnt; ++l) out[c + l] = obuf[l];
      }
    }
  }

 private:
  struct Node {
    double v, d;
  };
  std::vector<Node> nodes_;
  double x0_ = 0, h_ = 1, inv_h_ = 1;
  int n_ = 0;
};

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    ANTON_CHECK(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
  }

  // Convenience for numeric cells.
  static std::string fmt(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }
  static std::string fmt_int(int64_t v) { return std::to_string(v); }

  void print(std::ostream& os) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      os << "|";
      for (size_t c = 0; c < row.size(); ++c) {
        os << " " << std::setw(static_cast<int>(widths[c])) << std::left
           << row[c] << " |";
      }
      os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anton
